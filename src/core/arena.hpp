// Structure-of-arrays state arena for the scale engine.
//
// The per-node Reducer objects (push_sum.cpp, push_flow.cpp, …) keep their
// flow state in per-object heap vectors — fine at test sizes, but at 10^5+
// nodes the pointer-chasing and per-node allocations dominate a round. The
// ArenaFleet stores the SAME state for ALL nodes in flat contiguous arrays
// indexed by a CSR adjacency built once from net::Topology:
//
//   offsets_[i] .. offsets_[i+1]   node i's directed-edge range ("slots")
//   nbr_[e]                        neighbor id of directed edge e
//   reverse_slot_[e]               slot of i in that neighbor's own range
//   flows_[e*stride ..]            per-edge flow state, stride doubles each
//
// Every Mass (s[0..d-1], w) is stored as stride = d+1 consecutive doubles in
// the order [s0, …, s_{d-1}, w]. Mass's operators apply the s components in
// index order and then w, so a single flat loop over the stride reproduces
// the legacy floating-point operation sequence EXACTLY — the arena path is
// bitwise-identical to the per-object path by construction, and the
// differential suite (tests/sim/test_arena_equivalence.cpp) holds it to that.
//
// The hot per-round operations (make_message / receive) are templated on the
// Algorithm so the engine's round loop devirtualizes and inlines them; the
// cold protocol surface (link up/down, corruption, introspection) lives in
// arena.cpp. ArenaReducer is a thin per-node facade implementing the full
// Reducer interface on top of the fleet, so the differential oracle, the
// invariant checkers, the fault layer and the chaos harness run against the
// arena unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/mass.hpp"
#include "core/push_cancel_flow.hpp"
#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace pcf::core {

class ArenaFleet {
 public:
  /// Builds the CSR adjacency and the algorithm's state arrays, and installs
  /// one initial mass per node. All masses must share one dimension.
  ArenaFleet(Algorithm algorithm, const ReducerConfig& config,
             const net::Topology& topology, std::span<const Mass> initial);

  [[nodiscard]] std::size_t size() const noexcept { return live_count_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] Algorithm algorithm() const noexcept { return algorithm_; }
  [[nodiscard]] const ReducerConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::size_t degree(NodeId i) const noexcept {
    return offsets_[i + 1] - offsets_[i];
  }
  [[nodiscard]] std::size_t live_degree(NodeId i) const noexcept { return live_count_[i]; }
  [[nodiscard]] NodeId neighbor(NodeId i, std::size_t slot) const noexcept {
    return nbr_[offsets_[i] + slot];
  }
  [[nodiscard]] bool alive_at(NodeId i, std::size_t slot) const noexcept {
    return alive_[offsets_[i] + slot] != 0;
  }
  /// Slot index of neighbor j in node i's range, or nullopt.
  [[nodiscard]] std::optional<std::size_t> slot_of(NodeId i, NodeId j) const noexcept;

  /// A produced packet plus the receiver-side slot of the sender, so the
  /// engine's delivery loop needs no id -> slot lookup.
  struct Send {
    NodeId to = 0;
    std::uint32_t to_slot = 0;
    Packet packet;
  };

  // ---- hot path (templated on the algorithm; inlined into the engine) ----

  /// One gossip send step for node i: uniform live-neighbor draw (exactly one
  /// rng.below(live_degree) when non-empty, nothing otherwise — the reducers'
  /// RNG-stream contract) followed by the algorithm's send rule.
  template <Algorithm A>
  [[nodiscard]] std::optional<Send> make_message(NodeId i, Rng& rng) {
    const std::uint32_t lc = live_count_[i];
    if (lc == 0) return std::nullopt;
    const std::size_t slot =
        live_slots_[offsets_[i] + static_cast<std::size_t>(rng.below(lc))];
    return send_to_slot<A>(i, slot);
  }

  /// Directed send toward a specific live neighbor (deterministic schedules).
  template <Algorithm A>
  [[nodiscard]] std::optional<Send> make_message_to(NodeId i, NodeId target) {
    const auto slot = slot_of(i, target);
    if (!slot || alive_[offsets_[i] + *slot] == 0) return std::nullopt;
    return send_to_slot<A>(i, *slot);
  }

  template <Algorithm A>
  [[nodiscard]] std::optional<Send> send_to_slot(NodeId i, std::size_t slot);

  /// Delivers `packet` from neighbor `from` (= neighbor(i, slot)) to node i.
  /// The caller resolved the slot; all legacy acceptance checks (liveness,
  /// dimensions, header validity) are replayed here.
  template <Algorithm A>
  void receive(NodeId i, NodeId from, std::size_t slot, const Packet& packet);

  // ---- cold protocol surface (arena.cpp) ----

  void on_link_down(NodeId i, NodeId j);
  void on_link_up(NodeId i, NodeId j);
  void update_data(NodeId i, const Mass& delta);
  bool corrupt_stored_flow(NodeId i, Rng& rng);
  /// Checkpointing: dumps node i's mutable arena rows — per-edge liveness
  /// plus the current algorithm's flat state spans — as raw IEEE-754 bits.
  /// The CSR adjacency is topology-derived and not written. Format layout:
  /// DESIGN.md §8.
  void save_node(NodeId i, BinaryWriter& w) const;
  /// Restores rows written by save_node for the same topology/algorithm;
  /// rebuilds the node's live-slot prefix. Throws BinioError on a degree
  /// mismatch or truncation.
  void load_node(NodeId i, BinaryReader& r);
  /// Rejoin support: restores node i to its factory-fresh post-init state in
  /// place — all slots alive, zeroed flow state, `initial` as the input mass.
  /// The node keeps its arena rows; rejoin never grows the arena.
  void reset_node(NodeId i, const Mass& initial);

  [[nodiscard]] Mass local_mass(NodeId i) const;
  [[nodiscard]] double estimate(NodeId i, std::size_t k) const;
  [[nodiscard]] double max_abs_flow_component(NodeId i) const noexcept;
  [[nodiscard]] std::uint64_t role_swaps(NodeId i) const noexcept;
  [[nodiscard]] std::size_t wire_masses() const noexcept;
  [[nodiscard]] bool in_flight_mass_accumulates() const noexcept {
    return algorithm_ == Algorithm::kPushSum;
  }
  [[nodiscard]] std::size_t flows_toward(NodeId i, NodeId j, std::span<Mass> out) const;
  [[nodiscard]] Mass unreceived_mass(NodeId i, NodeId from, const Packet& packet) const;
  /// PCF only: the per-edge handshake state of edge (i, j), in the legacy
  /// debug-view format so the pcf-handshake invariant checker probes the
  /// arena exactly like the legacy reducer.
  [[nodiscard]] PushCancelFlow::EdgeView pcf_edge_state(NodeId i, NodeId j) const;

  /// Untyped dispatchers for the facade (switch on algorithm()).
  [[nodiscard]] std::optional<Send> make_message_any(NodeId i, Rng& rng);
  [[nodiscard]] std::optional<Send> make_message_to_any(NodeId i, NodeId target);
  void receive_any(NodeId i, NodeId from, const Packet& packet);

 private:
  static constexpr std::size_t kMaxStride = kMaxDim + 1;

  [[nodiscard]] double* row(std::vector<double>& v, std::size_t index) noexcept {
    return v.data() + index * stride_;
  }
  [[nodiscard]] const double* row(const std::vector<double>& v, std::size_t index) const noexcept {
    return v.data() + index * stride_;
  }
  /// PCF flow slot `which` (0/1) of directed edge e.
  [[nodiscard]] double* pcf_flow(std::size_t e, std::uint8_t which) noexcept {
    return flows_.data() + (e * 2 + which) * stride_;
  }
  [[nodiscard]] const double* pcf_flow(std::size_t e, std::uint8_t which) const noexcept {
    return flows_.data() + (e * 2 + which) * stride_;
  }

  [[nodiscard]] Mass mass_from(const double* r) const;
  void store_mass(double* r, const Mass& m) noexcept;
  static void zero_row(double* r, std::size_t stride) noexcept {
    for (std::size_t k = 0; k < stride; ++k) r[k] = 0.0;
  }

  /// e_i into `out` (stride doubles), replaying the per-component operation
  /// chain of the legacy algorithm exactly (see the per-algorithm notes in
  /// arena.cpp).
  void local_mass_into(NodeId i, double* out) const noexcept;
  /// FU only: the fused neighborhood average a_i.
  void fused_into(NodeId i, double* out) const noexcept;
  /// CORR only: v_i plus the reports of all current live children, slot order.
  void subtree_sum_into(NodeId i, double* out) const noexcept;
  /// CORR only: slot of the (depth, id)-minimal live neighbor at strictly
  /// smaller static tree depth, or nullopt for a (fragment) root.
  [[nodiscard]] std::optional<std::size_t> correction_parent_slot(NodeId i) const noexcept;

  void mark_dead_slot(NodeId i, std::size_t slot) noexcept;
  void mark_alive_slot(NodeId i, std::size_t slot) noexcept;

  // PCF receive rules (ported op-for-op from push_cancel_flow.cpp).
  void pcf_mirror_slot(std::size_t e, std::uint8_t which, const Mass& received) noexcept;
  void pcf_absorb_passive(NodeId i, std::size_t e) noexcept;
  void pcf_receive_as_initiator(NodeId i, std::size_t e, const Packet& packet) noexcept;
  void pcf_receive_as_completer(NodeId i, std::size_t e, const Packet& packet) noexcept;

  Algorithm algorithm_;
  ReducerConfig config_;
  std::size_t dim_ = 0;
  std::size_t stride_ = 0;

  // CSR adjacency (copied from the Topology; neighbor lists stay sorted).
  std::vector<std::size_t> offsets_;        ///< size n+1
  std::vector<NodeId> nbr_;                 ///< directed edges, E entries
  std::vector<std::uint32_t> reverse_slot_; ///< slot of i in nbr_[e]'s range
  std::vector<std::uint8_t> alive_;         ///< per directed edge
  /// Node i's live slots as a sorted prefix of [offsets_[i], offsets_[i] +
  /// live_count_[i]). Sorted ascending slots == ascending neighbor ids, so
  /// the uniform draw matches NeighborSet::pick_live_slot exactly.
  std::vector<std::uint32_t> live_slots_;
  std::vector<std::uint32_t> live_count_;   ///< per node

  // Algorithm state (only the current algorithm's arrays are allocated).
  std::vector<double> mass_;      ///< PS: n×stride — the in-flight mass
  std::vector<double> initial_;   ///< PF/PCF/FU: n×stride — input data v_i
  std::vector<double> flows_;     ///< PF/FU: E×stride; PCF: E×2×stride
  std::vector<double> cached_;    ///< PF ablation (pf_cached_flow_sum): n×stride
  std::vector<double> estimates_; ///< FU: ê_j; CORR: child report; FMH: m̂_j — E×stride
  std::vector<std::uint8_t> have_estimate_;  ///< FU/CORR/FMH: per edge
  std::vector<double> phi_;       ///< PCF: n×stride — absorbed (+fast: live) flows
  std::vector<double> pending_;   ///< PCF: E×stride — initiator's pending absorption
  std::vector<std::uint8_t> active_;         ///< PCF: per edge, active slot 0/1
  std::vector<std::uint64_t> cycle_;         ///< PCF: per edge, phase counter
  std::vector<std::uint64_t> role_swaps_;    ///< PCF: per node
  std::vector<std::uint8_t> child_;          ///< CORR: per edge — neighbor claims me as parent
  std::vector<double> global_;               ///< CORR: n×stride — last global view from parent
  std::vector<std::uint8_t> have_global_;    ///< CORR: per node
  std::shared_ptr<const net::TreeSchedule> tree_;  ///< CORR: resolved static schedule
};

// ---------------------------------------------------------------------------
// Hot-path templates. Each block is the corresponding legacy reducer function
// transcribed onto flat rows; the per-scalar operation chains are identical
// (see the layout note at the top of the file).
// ---------------------------------------------------------------------------

template <Algorithm A>
std::optional<ArenaFleet::Send> ArenaFleet::send_to_slot(NodeId i, std::size_t slot) {
  const std::size_t e = offsets_[i] + slot;
  Send out;
  out.to = nbr_[e];
  out.to_slot = reverse_slot_[e];

  if constexpr (A == Algorithm::kPushSum) {
    // PushSum::send_to_slot: keep half, push half.
    double* m = row(mass_, i);
    Mass share = Mass::zero(dim_);
    for (std::size_t k = 0; k < dim_; ++k) {
      share.s[k] = m[k] * 0.5;
      m[k] -= share.s[k];
    }
    share.w = m[dim_] * 0.5;
    m[dim_] -= share.w;
    out.packet.a = share;
    return out;
  } else if constexpr (A == Algorithm::kPushFlow) {
    // PushFlow::send_to_slot: fold half the mass into the flow, send the flow.
    double lm[kMaxStride];
    local_mass_into(i, lm);
    double* f = row(flows_, e);
    double* c = config_.pf_cached_flow_sum ? row(cached_, i) : nullptr;
    for (std::size_t k = 0; k < stride_; ++k) {
      const double half = lm[k] * 0.5;
      f[k] += half;
      if (c != nullptr) c[k] += half;
    }
    out.packet.a = mass_from(f);
    return out;
  } else if constexpr (A == Algorithm::kPushCancelFlow) {
    // PushCancelFlow::send_to_slot: PF on the edge's active slot only.
    double lm[kMaxStride];
    local_mass_into(i, lm);
    double* f = pcf_flow(e, active_[e]);
    double* phi = phi_.data() + i * stride_;
    const bool fast = config_.pcf_variant == PcfVariant::kFast;
    for (std::size_t k = 0; k < stride_; ++k) {
      const double half = lm[k] * 0.5;
      f[k] += half;
      if (fast) phi[k] += half;
    }
    out.packet.a = mass_from(pcf_flow(e, 0));
    out.packet.b = mass_from(pcf_flow(e, 1));
    out.packet.active_slot = static_cast<std::uint8_t>(active_[e] + 1);  // wire: 1-based
    out.packet.role_count = cycle_[e];
    return out;
  } else if constexpr (A == Algorithm::kFlowUpdating) {
    // FlowUpdating::send_to_slot: move the edge flow toward the fused average.
    double a[kMaxStride];
    fused_into(i, a);
    double* f = row(flows_, e);
    double* est = row(estimates_, e);
    if (have_estimate_[e] != 0) {
      for (std::size_t k = 0; k < stride_; ++k) f[k] += a[k] - est[k];
    } else {
      for (std::size_t k = 0; k < stride_; ++k) f[k] += a[k];
    }
    for (std::size_t k = 0; k < stride_; ++k) est[k] = a[k];
    have_estimate_[e] = 1;
    out.packet.a = mass_from(f);
    out.packet.b = mass_from(a);
    return out;
  } else if constexpr (A == Algorithm::kCorrectionAllreduce) {
    // CorrectionAllreduce::send_to_slot: full status — subtree report, parent
    // claim, and (when held) the global view.
    double s[kMaxStride];
    subtree_sum_into(i, s);
    const auto parent_slot = correction_parent_slot(i);
    out.packet.a = mass_from(s);
    out.packet.role_count =
        parent_slot ? static_cast<std::uint64_t>(nbr_[offsets_[i] + *parent_slot]) + 1 : 0;
    if (!parent_slot) {
      out.packet.b = mass_from(s);  // the (fragment) root's sum IS the view
      out.packet.active_slot = 2;
    } else if (have_global_[i] != 0) {
      out.packet.b = mass_from(row(global_, i));
      out.packet.active_slot = 2;
    } else {
      out.packet.b = Mass::zero(dim_);
      out.packet.active_slot = 1;  // b carries nothing yet
    }
    return out;
  } else {
    static_assert(A == Algorithm::kFuMassHybrid);
    // FuMassHybrid::send_to_slot: halve the gap to the neighbor's last report
    // through the edge flow, then transmit (flow, post-step mass).
    double m[kMaxStride];
    local_mass_into(i, m);
    double* f = row(flows_, e);
    if (have_estimate_[e] != 0) {
      const double* rep = row(estimates_, e);
      for (std::size_t k = 0; k < stride_; ++k) {
        const double d = (m[k] - rep[k]) * 0.5;
        f[k] += d;
        m[k] -= d;
      }
    }
    out.packet.a = mass_from(f);
    out.packet.b = mass_from(m);
    return out;
  }
}

template <Algorithm A>
void ArenaFleet::receive(NodeId i, NodeId from, std::size_t slot, const Packet& packet) {
  const std::size_t e = offsets_[i] + slot;
  PCF_ASSERT(nbr_[e] == from);

  if constexpr (A == Algorithm::kPushSum) {
    // PushSum::on_receive accepts from any known slot, live or excluded.
    PCF_ASSERT(packet.a.dim() == dim_);
    double* m = row(mass_, i);
    for (std::size_t k = 0; k < dim_; ++k) m[k] += packet.a.s[k];
    m[dim_] += packet.a.w;
  } else if constexpr (A == Algorithm::kPushFlow) {
    if (alive_[e] == 0) return;                // stale packet after exclusion
    if (packet.a.dim() != dim_) return;        // corrupted beyond use
    double* f = row(flows_, e);
    double* c = config_.pf_cached_flow_sum ? row(cached_, i) : nullptr;
    // Legacy op order per component: cached -= old flow, cached += mirror,
    // flow = mirror (two separate adds — do not fuse, the rounding differs).
    for (std::size_t k = 0; k < dim_; ++k) {
      const double mirrored = -packet.a.s[k];
      if (c != nullptr) {
        c[k] -= f[k];
        c[k] += mirrored;
      }
      f[k] = mirrored;
    }
    const double mirrored_w = -packet.a.w;
    if (c != nullptr) {
      c[dim_] -= f[dim_];
      c[dim_] += mirrored_w;
    }
    f[dim_] = mirrored_w;
  } else if constexpr (A == Algorithm::kPushCancelFlow) {
    if (alive_[e] == 0) return;
    if (packet.a.dim() != dim_ || packet.b.dim() != dim_) return;
    if (packet.active_slot != 1 && packet.active_slot != 2) return;  // corrupted header
    if (i < from) {
      pcf_receive_as_initiator(i, e, packet);
    } else {
      pcf_receive_as_completer(i, e, packet);
    }
  } else if constexpr (A == Algorithm::kCorrectionAllreduce) {
    if (alive_[e] == 0) return;
    if (packet.a.dim() != dim_ || packet.b.dim() != dim_) return;
    if (packet.active_slot != 1 && packet.active_slot != 2) return;  // corrupted header
    const bool claims_us = packet.role_count == static_cast<std::uint64_t>(i) + 1;
    child_[e] = claims_us ? 1 : 0;
    if (claims_us) {
      store_mass(row(estimates_, e), packet.a);
      have_estimate_[e] = 1;
    } else {
      have_estimate_[e] = 0;
    }
    if (packet.active_slot == 2) {
      const auto parent_slot = correction_parent_slot(i);
      if (parent_slot && offsets_[i] + *parent_slot == e) {
        store_mass(row(global_, i), packet.b);
        have_global_[i] = 1;
      }
    }
  } else {
    // FU and the FU/MD hybrid share the receive rule: overwrite the edge flow
    // with the exact mirror negation and refresh the neighbor's report.
    static_assert(A == Algorithm::kFlowUpdating || A == Algorithm::kFuMassHybrid);
    if (alive_[e] == 0) return;
    if (packet.a.dim() != dim_ || packet.b.dim() != dim_) return;
    double* f = row(flows_, e);
    double* est = row(estimates_, e);
    for (std::size_t k = 0; k < dim_; ++k) {
      f[k] = -packet.a.s[k];
      est[k] = packet.b.s[k];
    }
    f[dim_] = -packet.a.w;
    est[dim_] = packet.b.w;
    have_estimate_[e] = 1;
  }
}

// ---------------------------------------------------------------------------
// Per-node facade: the full Reducer interface on top of the fleet, so every
// engine-side consumer (oracle retarget, invariant checkers, fault hooks,
// tests poking engine.node(i)) sees an ordinary reducer.
// ---------------------------------------------------------------------------

class ArenaReducer final : public Reducer {
 public:
  ArenaReducer(ArenaFleet& fleet, NodeId self) : fleet_(&fleet), self_(self) {}

  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  [[nodiscard]] Mass local_mass() const override { return fleet_->local_mass(self_); }
  [[nodiscard]] double estimate(std::size_t k = 0) const override {
    return fleet_->estimate(self_, k);
  }
  void on_link_down(NodeId j) override { fleet_->on_link_down(self_, j); }
  void on_link_up(NodeId j) override { fleet_->on_link_up(self_, j); }
  void update_data(const Mass& delta) override { fleet_->update_data(self_, delta); }
  [[nodiscard]] std::string_view name() const noexcept override;
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return fleet_->live_degree(self_);
  }
  [[nodiscard]] double max_abs_flow_component() const noexcept override {
    return fleet_->max_abs_flow_component(self_);
  }
  [[nodiscard]] std::uint64_t role_swaps() const noexcept override {
    return fleet_->role_swaps(self_);
  }
  [[nodiscard]] std::size_t wire_masses() const noexcept override {
    return fleet_->wire_masses();
  }
  bool corrupt_stored_flow(Rng& rng) override {
    return fleet_->corrupt_stored_flow(self_, rng);
  }
  [[nodiscard]] std::size_t flows_toward(NodeId j, std::span<Mass> out) const override {
    return fleet_->flows_toward(self_, j, out);
  }
  [[nodiscard]] Mass unreceived_mass(NodeId from, const Packet& packet) const override {
    return fleet_->unreceived_mass(self_, from, packet);
  }
  [[nodiscard]] bool in_flight_mass_accumulates() const noexcept override {
    return fleet_->in_flight_mass_accumulates();
  }
  void save_state(BinaryWriter& w) const override { fleet_->save_node(self_, w); }
  void load_state(BinaryReader& r) override { fleet_->load_node(self_, r); }
  /// Test/checker hook, mirroring PushCancelFlow::edge_state.
  [[nodiscard]] PushCancelFlow::EdgeView edge_state(NodeId j) const {
    return fleet_->pcf_edge_state(self_, j);
  }

 private:
  ArenaFleet* fleet_;
  NodeId self_;
  bool initialized_ = false;
};

}  // namespace pcf::core
