#include "core/arena.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/binio.hpp"

namespace pcf::core {

namespace {
const Mass& packet_slot(const Packet& packet, std::uint8_t slot) {
  return slot == 0 ? packet.a : packet.b;
}
}  // namespace

ArenaFleet::ArenaFleet(Algorithm algorithm, const ReducerConfig& config,
                       const net::Topology& topology, std::span<const Mass> initial)
    : algorithm_(algorithm), config_(config) {
  const std::size_t n = topology.size();
  PCF_CHECK_MSG(n > 0, "arena needs a non-empty topology");
  PCF_CHECK_MSG(initial.size() == n, "one initial mass per node required");
  dim_ = initial[0].dim();
  stride_ = dim_ + 1;
  for (const Mass& m : initial) {
    PCF_CHECK_MSG(m.dim() == dim_, "initial masses must share one dimension");
  }

  // CSR adjacency. Topology stores sorted neighbor lists already; the checks
  // below are the arena's construction contract (simple symmetric graph) that
  // the round-trip property test pins.
  offsets_.assign(n + 1, 0);
  for (NodeId i = 0; i < n; ++i) {
    const auto nbrs = topology.neighbors(i);
    PCF_CHECK_MSG(!nbrs.empty(), "node " << i << " needs at least one neighbor");
    offsets_[i + 1] = offsets_[i] + nbrs.size();
  }
  const std::size_t edges = offsets_[n];
  nbr_.resize(edges);
  for (NodeId i = 0; i < n; ++i) {
    const auto nbrs = topology.neighbors(i);
    std::copy(nbrs.begin(), nbrs.end(), nbr_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]));
    for (std::size_t s = 0; s < nbrs.size(); ++s) {
      PCF_CHECK_MSG(nbrs[s] != i, "self-edge at node " << i);
      PCF_CHECK_MSG(s == 0 || nbrs[s - 1] < nbrs[s],
                    "neighbor list of node " << i << " not sorted/unique");
    }
  }
  reverse_slot_.resize(edges);
  for (NodeId i = 0; i < n; ++i) {
    for (std::size_t e = offsets_[i]; e < offsets_[i + 1]; ++e) {
      const NodeId j = nbr_[e];
      const auto back = slot_of(j, i);
      PCF_CHECK_MSG(back.has_value(), "asymmetric edge " << i << "->" << j);
      reverse_slot_[e] = static_cast<std::uint32_t>(*back);
    }
  }
  alive_.assign(edges, 1);
  live_slots_.resize(edges);
  live_count_.resize(n);
  for (NodeId i = 0; i < n; ++i) {
    const auto deg = static_cast<std::uint32_t>(offsets_[i + 1] - offsets_[i]);
    live_count_[i] = deg;
    for (std::uint32_t s = 0; s < deg; ++s) live_slots_[offsets_[i] + s] = s;
  }

  // Algorithm state. Only the arrays the algorithm reads are allocated.
  switch (algorithm_) {
    case Algorithm::kPushSum:
      mass_.assign(n * stride_, 0.0);
      break;
    case Algorithm::kPushFlow:
      initial_.assign(n * stride_, 0.0);
      flows_.assign(edges * stride_, 0.0);
      if (config_.pf_cached_flow_sum) cached_.assign(n * stride_, 0.0);
      break;
    case Algorithm::kPushCancelFlow:
      initial_.assign(n * stride_, 0.0);
      flows_.assign(edges * 2 * stride_, 0.0);
      phi_.assign(n * stride_, 0.0);
      pending_.assign(edges * stride_, 0.0);
      active_.assign(edges, 0);
      cycle_.assign(edges, 0);
      role_swaps_.assign(n, 0);
      break;
    case Algorithm::kFlowUpdating:
      initial_.assign(n * stride_, 0.0);
      flows_.assign(edges * stride_, 0.0);
      estimates_.assign(edges * stride_, 0.0);
      have_estimate_.assign(edges, 0);
      break;
    case Algorithm::kCorrectionAllreduce: {
      PCF_CHECK_MSG(config_.tree != nullptr,
                    "correction-allreduce needs a resolved tree schedule "
                    "(engines build one; direct construction must supply it)");
      tree_ = config_.tree;
      PCF_CHECK_MSG(tree_->parent.size() >= n && tree_->depth.size() >= n,
                    "tree schedule does not cover the topology");
      initial_.assign(n * stride_, 0.0);
      estimates_.assign(edges * stride_, 0.0);  // child subtree reports
      have_estimate_.assign(edges, 0);
      child_.assign(edges, 0);
      global_.assign(n * stride_, 0.0);
      have_global_.assign(n, 0);
      // Static child set per node (see CorrectionAllreduce::init): the edge's
      // neighbor claims us when its scheduled parent is us.
      for (NodeId i = 0; i < n; ++i) {
        for (std::size_t e = offsets_[i]; e < offsets_[i + 1]; ++e) {
          child_[e] = tree_->parent[nbr_[e]] == i ? 1 : 0;
        }
      }
      break;
    }
    case Algorithm::kFuMassHybrid:
      initial_.assign(n * stride_, 0.0);
      flows_.assign(edges * stride_, 0.0);
      estimates_.assign(edges * stride_, 0.0);  // m̂_j: neighbor's reported mass
      have_estimate_.assign(edges, 0);
      break;
  }
  std::vector<double>& input = algorithm_ == Algorithm::kPushSum ? mass_ : initial_;
  for (NodeId i = 0; i < n; ++i) store_mass(row(input, i), initial[i]);
}

std::optional<std::size_t> ArenaFleet::slot_of(NodeId i, NodeId j) const noexcept {
  const auto begin = nbr_.begin() + static_cast<std::ptrdiff_t>(offsets_[i]);
  const auto end = nbr_.begin() + static_cast<std::ptrdiff_t>(offsets_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return std::nullopt;
  return static_cast<std::size_t>(it - begin);
}

Mass ArenaFleet::mass_from(const double* r) const {
  Mass m = Mass::zero(dim_);
  for (std::size_t k = 0; k < dim_; ++k) m.s[k] = r[k];
  m.w = r[dim_];
  return m;
}

void ArenaFleet::store_mass(double* r, const Mass& m) noexcept {
  PCF_ASSERT(m.dim() == dim_);
  for (std::size_t k = 0; k < dim_; ++k) r[k] = m.s[k];
  r[dim_] = m.w;
}

void ArenaFleet::local_mass_into(NodeId i, double* out) const noexcept {
  switch (algorithm_) {
    case Algorithm::kPushSum: {
      const double* m = row(mass_, i);
      for (std::size_t k = 0; k < stride_; ++k) out[k] = m[k];
      return;
    }
    case Algorithm::kPushFlow: {
      // PushFlow::local_mass: initial − flow_sum (sum over live slots in
      // ascending slot order, THEN one subtraction — not per-slot subtract).
      const double* init = row(initial_, i);
      if (config_.pf_cached_flow_sum) {
        const double* c = row(cached_, i);
        for (std::size_t k = 0; k < stride_; ++k) out[k] = init[k] - c[k];
        return;
      }
      double sum[kMaxStride];
      zero_row(sum, stride_);
      for (std::size_t s = 0; s < degree(i); ++s) {
        const std::size_t e = offsets_[i] + s;
        if (alive_[e] == 0) continue;
        const double* f = row(flows_, e);
        for (std::size_t k = 0; k < stride_; ++k) sum[k] += f[k];
      }
      for (std::size_t k = 0; k < stride_; ++k) out[k] = init[k] - sum[k];
      return;
    }
    case Algorithm::kPushCancelFlow: {
      // PushCancelFlow::local_mass: fast = initial − ϕ;
      // robust = (initial − ϕ) − Σ live slots (flow[0] then flow[1] per slot).
      const double* init = row(initial_, i);
      const double* phi = row(phi_, i);
      for (std::size_t k = 0; k < stride_; ++k) out[k] = init[k] - phi[k];
      if (config_.pcf_variant == PcfVariant::kFast) return;
      double sum[kMaxStride];
      zero_row(sum, stride_);
      for (std::size_t s = 0; s < degree(i); ++s) {
        const std::size_t e = offsets_[i] + s;
        if (alive_[e] == 0) continue;
        const double* f0 = pcf_flow(e, 0);
        const double* f1 = pcf_flow(e, 1);
        for (std::size_t k = 0; k < stride_; ++k) sum[k] += f0[k];
        for (std::size_t k = 0; k < stride_; ++k) sum[k] += f1[k];
      }
      for (std::size_t k = 0; k < stride_; ++k) out[k] -= sum[k];
      return;
    }
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid: {
      // FlowUpdating::local_mass (shared by the hybrid) subtracts live flows
      // PER SLOT from the initial mass — a different rounding than PF's
      // sum-then-subtract, deliberately preserved.
      const double* init = row(initial_, i);
      for (std::size_t k = 0; k < stride_; ++k) out[k] = init[k];
      for (std::size_t s = 0; s < degree(i); ++s) {
        const std::size_t e = offsets_[i] + s;
        if (alive_[e] == 0) continue;
        const double* f = row(flows_, e);
        for (std::size_t k = 0; k < stride_; ++k) out[k] -= f[k];
      }
      return;
    }
    case Algorithm::kCorrectionAllreduce: {
      // CorrectionAllreduce::local_mass: reports move no mass — the conserved
      // quantity is the input itself.
      const double* init = row(initial_, i);
      for (std::size_t k = 0; k < stride_; ++k) out[k] = init[k];
      return;
    }
  }
}

void ArenaFleet::fused_into(NodeId i, double* out) const noexcept {
  local_mass_into(i, out);
  std::size_t count = 1;
  for (std::size_t s = 0; s < degree(i); ++s) {
    const std::size_t e = offsets_[i] + s;
    if (alive_[e] == 0 || have_estimate_[e] == 0) continue;
    const double* est = row(estimates_, e);
    for (std::size_t k = 0; k < stride_; ++k) out[k] += est[k];
    ++count;
  }
  const double inv = 1.0 / static_cast<double>(count);
  for (std::size_t k = 0; k < stride_; ++k) out[k] *= inv;
}

void ArenaFleet::subtree_sum_into(NodeId i, double* out) const noexcept {
  // CorrectionAllreduce::subtree_sum: v_i plus every live, claiming, reported
  // child's report, ascending slot order.
  const double* init = row(initial_, i);
  for (std::size_t k = 0; k < stride_; ++k) out[k] = init[k];
  for (std::size_t s = 0; s < degree(i); ++s) {
    const std::size_t e = offsets_[i] + s;
    if (alive_[e] == 0 || child_[e] == 0 || have_estimate_[e] == 0) continue;
    const double* r = row(estimates_, e);
    for (std::size_t k = 0; k < stride_; ++k) out[k] += r[k];
  }
}

std::optional<std::size_t> ArenaFleet::correction_parent_slot(NodeId i) const noexcept {
  // CorrectionAllreduce::current_parent_slot: the (depth, id)-minimal live
  // neighbor at strictly smaller static depth. Ascending slots == ascending
  // ids, so the strict < breaks depth ties toward the smaller id.
  std::optional<std::size_t> best;
  std::uint32_t best_depth = tree_->depth[i];
  for (std::size_t s = 0; s < degree(i); ++s) {
    const std::size_t e = offsets_[i] + s;
    if (alive_[e] == 0) continue;
    const std::uint32_t d = tree_->depth[nbr_[e]];
    if (d < best_depth) {
      best = s;
      best_depth = d;
    }
  }
  return best;
}

Mass ArenaFleet::local_mass(NodeId i) const {
  double buf[kMaxStride];
  local_mass_into(i, buf);
  return mass_from(buf);
}

double ArenaFleet::estimate(NodeId i, std::size_t k) const {
  PCF_ASSERT(k < dim_);
  double buf[kMaxStride];
  if (algorithm_ == Algorithm::kFlowUpdating) {
    fused_into(i, buf);  // FU reports the fused neighborhood estimate
  } else if (algorithm_ == Algorithm::kCorrectionAllreduce) {
    // CorrectionAllreduce::estimate: the parent-delivered global view while
    // attached, the own subtree sum as a (fragment) root or before the first
    // view arrives.
    if (have_global_[i] != 0 && correction_parent_slot(i).has_value()) {
      const double* g = row(global_, i);
      for (std::size_t c = 0; c < stride_; ++c) buf[c] = g[c];
    } else {
      subtree_sum_into(i, buf);
    }
  } else {
    local_mass_into(i, buf);
  }
  if (buf[dim_] == 0.0) return 0.0;  // Mass::estimate's zero-weight rule
  return buf[k] / buf[dim_];
}

void ArenaFleet::mark_dead_slot(NodeId i, std::size_t slot) noexcept {
  const std::size_t base = offsets_[i];
  const auto s = static_cast<std::uint32_t>(slot);
  std::uint32_t* seg = live_slots_.data() + base;
  const std::uint32_t lc = live_count_[i];
  const auto pos =
      static_cast<std::size_t>(std::lower_bound(seg, seg + lc, s) - seg);
  for (std::size_t p = pos; p + 1 < lc; ++p) seg[p] = seg[p + 1];
  --live_count_[i];
  alive_[base + slot] = 0;
}

void ArenaFleet::mark_alive_slot(NodeId i, std::size_t slot) noexcept {
  const std::size_t base = offsets_[i];
  const auto s = static_cast<std::uint32_t>(slot);
  std::uint32_t* seg = live_slots_.data() + base;
  const std::uint32_t lc = live_count_[i];
  const auto pos =
      static_cast<std::size_t>(std::lower_bound(seg, seg + lc, s) - seg);
  for (std::size_t p = lc; p > pos; --p) seg[p] = seg[p - 1];
  seg[pos] = s;
  ++live_count_[i];
  alive_[base + slot] = 1;
}

void ArenaFleet::on_link_down(NodeId i, NodeId j) {
  const auto slot = slot_of(i, j);
  if (!slot || alive_[offsets_[i] + *slot] == 0) return;  // unknown or already dead
  // The legacy reducer resolves its current parent BEFORE the exclusion takes
  // effect — replicate the ordering.
  std::optional<std::size_t> parent_slot;
  if (algorithm_ == Algorithm::kCorrectionAllreduce) parent_slot = correction_parent_slot(i);
  mark_dead_slot(i, *slot);
  const std::size_t e = offsets_[i] + *slot;
  switch (algorithm_) {
    case Algorithm::kPushSum:
      return;  // no flow state to roll back
    case Algorithm::kPushFlow: {
      double* f = row(flows_, e);
      if (config_.pf_cached_flow_sum) {
        double* c = row(cached_, i);
        for (std::size_t k = 0; k < stride_; ++k) c[k] -= f[k];
      }
      zero_row(f, stride_);
      return;
    }
    case Algorithm::kPushCancelFlow: {
      double* f0 = pcf_flow(e, 0);
      double* f1 = pcf_flow(e, 1);
      if (config_.pcf_variant == PcfVariant::kFast) {
        double* phi = row(phi_, i);
        for (std::size_t k = 0; k < stride_; ++k) phi[k] -= f0[k];
        for (std::size_t k = 0; k < stride_; ++k) phi[k] -= f1[k];
      }
      zero_row(f0, stride_);
      zero_row(f1, stride_);
      if (i < j && cycle_[e] % 2 == 1) {
        // Initiator mid-transition: roll back the pending absorption (see
        // PushCancelFlow::on_link_down for the two-generals note).
        double* phi = row(phi_, i);
        double* pending = row(pending_, e);
        for (std::size_t k = 0; k < stride_; ++k) phi[k] -= pending[k];
        zero_row(pending, stride_);
      }
      return;
    }
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid: {
      zero_row(row(flows_, e), stride_);
      zero_row(row(estimates_, e), stride_);
      have_estimate_[e] = 0;
      return;
    }
    case Algorithm::kCorrectionAllreduce: {
      zero_row(row(estimates_, e), stride_);
      have_estimate_[e] = 0;
      child_[e] = 0;
      // Losing the parent drops the global view.
      if (parent_slot && *parent_slot == *slot) have_global_[i] = 0;
      return;
    }
  }
}

void ArenaFleet::on_link_up(NodeId i, NodeId j) {
  const auto slot = slot_of(i, j);
  if (!slot || alive_[offsets_[i] + *slot] != 0) return;  // unknown or already alive
  mark_alive_slot(i, *slot);
  const std::size_t e = offsets_[i] + *slot;
  switch (algorithm_) {
    case Algorithm::kPushSum:
      return;
    case Algorithm::kPushFlow:
      zero_row(row(flows_, e), stride_);
      return;
    case Algorithm::kPushCancelFlow:
      // Factory-fresh edge: zero flows, slot 1 active, cycle 0 (both
      // endpoints restart aligned in a steady phase).
      zero_row(pcf_flow(e, 0), stride_);
      zero_row(pcf_flow(e, 1), stride_);
      active_[e] = 0;
      cycle_[e] = 0;
      zero_row(row(pending_, e), stride_);
      return;
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid:
      zero_row(row(flows_, e), stride_);
      zero_row(row(estimates_, e), stride_);
      have_estimate_[e] = 0;
      return;
    case Algorithm::kCorrectionAllreduce:
      // Blank edge: no claim, no report, until the neighbor's first packet.
      zero_row(row(estimates_, e), stride_);
      have_estimate_[e] = 0;
      child_[e] = 0;
      return;
  }
}

void ArenaFleet::update_data(NodeId i, const Mass& delta) {
  PCF_CHECK_MSG(delta.dim() == dim_, "update_data dimension mismatch");
  double* r = algorithm_ == Algorithm::kPushSum ? row(mass_, i) : row(initial_, i);
  for (std::size_t k = 0; k < dim_; ++k) r[k] += delta.s[k];
  r[dim_] += delta.w;
}

bool ArenaFleet::corrupt_stored_flow(NodeId i, Rng& rng) {
  if (algorithm_ == Algorithm::kPushSum) return false;  // no stored flows, no draws
  const std::size_t deg = degree(i);
  double* victim_row = nullptr;
  if (algorithm_ == Algorithm::kPushCancelFlow) {
    const auto edge = static_cast<std::size_t>(rng.below(deg));
    victim_row = pcf_flow(offsets_[i] + edge, static_cast<std::uint8_t>(rng.below(2)));
  } else if (algorithm_ == Algorithm::kCorrectionAllreduce) {
    // Victim: one stored child report, or (last index) the global view — the
    // same below(deg + 1) draw as the legacy reducer.
    const auto victim_index = static_cast<std::size_t>(rng.below(deg + 1));
    victim_row =
        victim_index < deg ? row(estimates_, offsets_[i] + victim_index) : row(global_, i);
  } else {
    const auto slot = static_cast<std::size_t>(rng.below(deg));
    victim_row = row(flows_, offsets_[i] + slot);
  }
  // Layout [s0..s_{d-1}, w]: the drawn component IS the flat index (the
  // legacy reducers draw below(dim+1) and map dim -> w the same way).
  const auto component = static_cast<std::size_t>(rng.below(dim_ + 1));
  double& victim = victim_row[component];
  std::uint64_t bit = rng.below(53);
  if (bit == 52) bit = 63;  // sign bit
  std::uint64_t bits;
  std::memcpy(&bits, &victim, sizeof bits);
  bits ^= (std::uint64_t{1} << bit);
  std::memcpy(&victim, &bits, sizeof bits);
  return true;
}

void ArenaFleet::reset_node(NodeId i, const Mass& initial) {
  PCF_CHECK_MSG(initial.dim() == dim_, "reset_node dimension mismatch");
  const std::size_t base = offsets_[i];
  const std::size_t deg = degree(i);
  for (std::uint32_t s = 0; s < deg; ++s) {
    alive_[base + s] = 1;
    live_slots_[base + s] = s;
  }
  live_count_[i] = static_cast<std::uint32_t>(deg);
  switch (algorithm_) {
    case Algorithm::kPushSum:
      store_mass(row(mass_, i), initial);
      return;
    case Algorithm::kPushFlow:
      store_mass(row(initial_, i), initial);
      for (std::size_t s = 0; s < deg; ++s) zero_row(row(flows_, base + s), stride_);
      if (config_.pf_cached_flow_sum) zero_row(row(cached_, i), stride_);
      return;
    case Algorithm::kPushCancelFlow:
      store_mass(row(initial_, i), initial);
      for (std::size_t s = 0; s < deg; ++s) {
        zero_row(pcf_flow(base + s, 0), stride_);
        zero_row(pcf_flow(base + s, 1), stride_);
        zero_row(row(pending_, base + s), stride_);
        active_[base + s] = 0;
        cycle_[base + s] = 0;
      }
      zero_row(row(phi_, i), stride_);
      role_swaps_[i] = 0;
      return;
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid:
      store_mass(row(initial_, i), initial);
      for (std::size_t s = 0; s < deg; ++s) {
        zero_row(row(flows_, base + s), stride_);
        zero_row(row(estimates_, base + s), stride_);
        have_estimate_[base + s] = 0;
      }
      return;
    case Algorithm::kCorrectionAllreduce:
      store_mass(row(initial_, i), initial);
      for (std::size_t s = 0; s < deg; ++s) {
        const std::size_t e = base + s;
        zero_row(row(estimates_, e), stride_);
        have_estimate_[e] = 0;
        // Factory-fresh init re-derives the STATIC child set from the
        // schedule (CorrectionAllreduce::init on rejoin).
        child_[e] = tree_->parent[nbr_[e]] == i ? 1 : 0;
      }
      zero_row(row(global_, i), stride_);
      have_global_[i] = 0;
      return;
  }
}

namespace {
void write_row(BinaryWriter& w, const double* r, std::size_t stride) {
  for (std::size_t k = 0; k < stride; ++k) w.f64(r[k]);
}
void read_row(BinaryReader& r, double* out, std::size_t stride) {
  for (std::size_t k = 0; k < stride; ++k) out[k] = r.f64();
}
}  // namespace

void ArenaFleet::save_node(NodeId i, BinaryWriter& w) const {
  const std::size_t base = offsets_[i];
  const std::size_t deg = degree(i);
  w.u64(deg);
  for (std::size_t s = 0; s < deg; ++s) w.u8(alive_[base + s]);
  switch (algorithm_) {
    case Algorithm::kPushSum:
      write_row(w, row(mass_, i), stride_);
      return;
    case Algorithm::kPushFlow:
      write_row(w, row(initial_, i), stride_);  // mutable via update_data
      for (std::size_t s = 0; s < deg; ++s) write_row(w, row(flows_, base + s), stride_);
      if (config_.pf_cached_flow_sum) write_row(w, row(cached_, i), stride_);
      return;
    case Algorithm::kPushCancelFlow:
      write_row(w, row(initial_, i), stride_);
      for (std::size_t s = 0; s < deg; ++s) {
        const std::size_t e = base + s;
        write_row(w, pcf_flow(e, 0), stride_);
        write_row(w, pcf_flow(e, 1), stride_);
        w.u8(active_[e]);
        w.u64(cycle_[e]);
        write_row(w, row(pending_, e), stride_);
      }
      write_row(w, row(phi_, i), stride_);
      w.u64(role_swaps_[i]);
      return;
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid:
      write_row(w, row(initial_, i), stride_);
      for (std::size_t s = 0; s < deg; ++s) {
        const std::size_t e = base + s;
        write_row(w, row(flows_, e), stride_);
        write_row(w, row(estimates_, e), stride_);
        w.u8(have_estimate_[e]);
      }
      return;
    case Algorithm::kCorrectionAllreduce:
      write_row(w, row(initial_, i), stride_);
      for (std::size_t s = 0; s < deg; ++s) {
        const std::size_t e = base + s;
        write_row(w, row(estimates_, e), stride_);
        w.u8(have_estimate_[e]);
        w.u8(child_[e]);
      }
      write_row(w, row(global_, i), stride_);
      w.u8(have_global_[i]);
      return;
  }
}

void ArenaFleet::load_node(NodeId i, BinaryReader& r) {
  const std::size_t base = offsets_[i];
  const std::size_t deg = degree(i);
  if (r.u64() != deg) throw BinioError("arena checkpoint: node degree mismatch");
  std::uint32_t lc = 0;
  for (std::uint32_t s = 0; s < deg; ++s) {
    alive_[base + s] = r.u8() ? 1 : 0;
    if (alive_[base + s] != 0) live_slots_[base + lc++] = s;
  }
  live_count_[i] = lc;
  switch (algorithm_) {
    case Algorithm::kPushSum:
      read_row(r, row(mass_, i), stride_);
      return;
    case Algorithm::kPushFlow:
      read_row(r, row(initial_, i), stride_);
      for (std::size_t s = 0; s < deg; ++s) read_row(r, row(flows_, base + s), stride_);
      if (config_.pf_cached_flow_sum) read_row(r, row(cached_, i), stride_);
      return;
    case Algorithm::kPushCancelFlow:
      read_row(r, row(initial_, i), stride_);
      for (std::size_t s = 0; s < deg; ++s) {
        const std::size_t e = base + s;
        read_row(r, pcf_flow(e, 0), stride_);
        read_row(r, pcf_flow(e, 1), stride_);
        active_[e] = r.u8();
        if (active_[e] > 1) throw BinioError("arena checkpoint: active slot out of range");
        cycle_[e] = r.u64();
        read_row(r, row(pending_, e), stride_);
      }
      read_row(r, row(phi_, i), stride_);
      role_swaps_[i] = r.u64();
      return;
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid:
      read_row(r, row(initial_, i), stride_);
      for (std::size_t s = 0; s < deg; ++s) {
        const std::size_t e = base + s;
        read_row(r, row(flows_, e), stride_);
        read_row(r, row(estimates_, e), stride_);
        have_estimate_[e] = r.u8() ? 1 : 0;
      }
      return;
    case Algorithm::kCorrectionAllreduce:
      read_row(r, row(initial_, i), stride_);
      for (std::size_t s = 0; s < deg; ++s) {
        const std::size_t e = base + s;
        read_row(r, row(estimates_, e), stride_);
        have_estimate_[e] = r.u8() ? 1 : 0;
        child_[e] = r.u8() ? 1 : 0;
      }
      read_row(r, row(global_, i), stride_);
      have_global_[i] = r.u8() ? 1 : 0;
      return;
  }
}

double ArenaFleet::max_abs_flow_component(NodeId i) const noexcept {
  double best = 0.0;
  const auto scan = [&](const double* r) {
    for (std::size_t k = 0; k < stride_; ++k) best = std::max(best, std::fabs(r[k]));
  };
  switch (algorithm_) {
    case Algorithm::kPushSum:
    case Algorithm::kCorrectionAllreduce:
      return 0.0;  // no flow state
    case Algorithm::kPushFlow:
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid:
      for (std::size_t s = 0; s < degree(i); ++s) {
        const std::size_t e = offsets_[i] + s;
        if (alive_[e] != 0) scan(row(flows_, e));
      }
      return best;
    case Algorithm::kPushCancelFlow:
      for (std::size_t s = 0; s < degree(i); ++s) {
        const std::size_t e = offsets_[i] + s;
        if (alive_[e] == 0) continue;
        scan(pcf_flow(e, 0));
        scan(pcf_flow(e, 1));
      }
      return best;
  }
  return best;
}

std::uint64_t ArenaFleet::role_swaps(NodeId i) const noexcept {
  return algorithm_ == Algorithm::kPushCancelFlow ? role_swaps_[i] : 0;
}

std::size_t ArenaFleet::wire_masses() const noexcept {
  switch (algorithm_) {
    case Algorithm::kPushSum:
    case Algorithm::kPushFlow:
      return 1;
    case Algorithm::kPushCancelFlow:
    case Algorithm::kFlowUpdating:
    case Algorithm::kCorrectionAllreduce:
    case Algorithm::kFuMassHybrid:
      return 2;
  }
  return 1;
}

std::size_t ArenaFleet::flows_toward(NodeId i, NodeId j, std::span<Mass> out) const {
  if (algorithm_ == Algorithm::kPushSum || algorithm_ == Algorithm::kCorrectionAllreduce) {
    return 0;  // no flow state
  }
  const auto slot = slot_of(i, j);
  if (!slot || alive_[offsets_[i] + *slot] == 0) return 0;
  const std::size_t e = offsets_[i] + *slot;
  if (algorithm_ == Algorithm::kPushCancelFlow) {
    if (out.size() < 2) return 0;
    out[0] = mass_from(pcf_flow(e, 0));
    out[1] = mass_from(pcf_flow(e, 1));
    return 2;
  }
  if (out.empty()) return 0;
  out[0] = mass_from(row(flows_, e));
  return 1;
}

PushCancelFlow::EdgeView ArenaFleet::pcf_edge_state(NodeId i, NodeId j) const {
  PCF_CHECK_MSG(algorithm_ == Algorithm::kPushCancelFlow, "pcf_edge_state on non-PCF arena");
  const auto slot = slot_of(i, j);
  PCF_CHECK_MSG(slot.has_value(), "pcf_edge_state: node " << j << " is not a neighbor");
  const std::size_t e = offsets_[i] + *slot;
  return PushCancelFlow::EdgeView{mass_from(pcf_flow(e, 0)), mass_from(pcf_flow(e, 1)),
                                  static_cast<std::uint8_t>(active_[e] + 1), cycle_[e]};
}

Mass ArenaFleet::unreceived_mass(NodeId i, NodeId from, const Packet& packet) const {
  Mass delta = Mass::zero(dim_);
  const auto slot = slot_of(i, from);
  switch (algorithm_) {
    case Algorithm::kPushSum: {
      if (!slot || packet.a.dim() != dim_) return delta;
      return packet.a;
    }
    case Algorithm::kPushFlow: {
      if (!slot || alive_[offsets_[i] + *slot] == 0 || packet.a.dim() != dim_) return delta;
      return mass_from(row(flows_, offsets_[i] + *slot)) + packet.a;
    }
    case Algorithm::kFlowUpdating:
    case Algorithm::kFuMassHybrid: {
      if (!slot || alive_[offsets_[i] + *slot] == 0 || packet.a.dim() != dim_ ||
          packet.b.dim() != dim_) {
        return delta;
      }
      return mass_from(row(flows_, offsets_[i] + *slot)) + packet.a;
    }
    case Algorithm::kCorrectionAllreduce:
      return delta;  // reports carry no conserved mass
    case Algorithm::kPushCancelFlow:
      break;  // handled below
  }

  // PCF: replay the receive phase rules without mutating (see
  // PushCancelFlow::unreceived_mass for the derivation).
  if (!slot || alive_[offsets_[i] + *slot] == 0) return delta;
  if (packet.a.dim() != dim_ || packet.b.dim() != dim_) return delta;
  if (packet.active_slot != 1 && packet.active_slot != 2) return delta;
  const std::size_t e = offsets_[i] + *slot;
  const std::uint64_t r_p = packet.role_count;
  const auto mirror_delta = [&](std::uint8_t s) {
    delta += mass_from(pcf_flow(e, s)) + packet_slot(packet, s);
  };

  if (i < from) {  // we are the initiator
    if (r_p == cycle_[e]) {
      if (cycle_[e] % 2 == 1) {
        mirror_delta(static_cast<std::uint8_t>(1 - active_[e]));
      } else {
        mirror_delta(active_[e]);
      }
    } else if (r_p + 1 == cycle_[e]) {
      mirror_delta(active_[e]);
    }
    return delta;
  }

  // We are the completer.
  std::uint8_t active = active_[e];
  std::uint64_t cycle = cycle_[e];
  if (r_p == cycle + 1) {
    if (cycle % 2 == 0) active = static_cast<std::uint8_t>(1 - active);
    ++cycle;
  } else if (r_p != cycle) {
    return delta;
  }
  if (cycle % 2 == 1) {
    mirror_delta(static_cast<std::uint8_t>(1 - active));
  } else {
    mirror_delta(active);
    mirror_delta(static_cast<std::uint8_t>(1 - active));
  }
  return delta;
}

// ---- PCF receive rules ----

void ArenaFleet::pcf_mirror_slot(std::size_t e, std::uint8_t which,
                                 const Mass& received) noexcept {
  // Legacy mirror_slot runs on the edge's owner; recover the owner from the
  // edge index via the peer's reverse slot.
  const NodeId peer = nbr_[e];
  const NodeId owner = nbr_[offsets_[peer] + reverse_slot_[e]];
  double* f = pcf_flow(e, which);
  const bool fast = config_.pcf_variant == PcfVariant::kFast;
  double* phi = fast ? row(phi_, owner) : nullptr;
  // Per component: mirrored = −received; ϕ −= old flow; ϕ += mirrored;
  // flow = mirrored (two separate ϕ updates, as in the legacy code).
  for (std::size_t k = 0; k < dim_; ++k) {
    const double mirrored = -received.s[k];
    if (fast) {
      phi[k] -= f[k];
      phi[k] += mirrored;
    }
    f[k] = mirrored;
  }
  const double mirrored_w = -received.w;
  if (fast) {
    phi[dim_] -= f[dim_];
    phi[dim_] += mirrored_w;
  }
  f[dim_] = mirrored_w;
}

void ArenaFleet::pcf_absorb_passive(NodeId i, std::size_t e) noexcept {
  const auto pas = static_cast<std::uint8_t>(1 - active_[e]);
  double* f = pcf_flow(e, pas);
  if (config_.pcf_variant == PcfVariant::kRobust) {
    double* phi = row(phi_, i);
    for (std::size_t k = 0; k < stride_; ++k) phi[k] += f[k];
  }
  zero_row(f, stride_);
}

void ArenaFleet::pcf_receive_as_initiator(NodeId i, std::size_t e,
                                          const Packet& packet) noexcept {
  const std::uint64_t r_p = packet.role_count;

  if (r_p == cycle_[e]) {
    if (cycle_[e] % 2 == 1) {
      // Transition: the completer completed and swapped — adopt.
      active_[e] = static_cast<std::uint8_t>(1 - active_[e]);
      zero_row(row(pending_, e), stride_);
      ++cycle_[e];
      ++role_swaps_[i];
      pcf_mirror_slot(e, active_[e], packet_slot(packet, active_[e]));
      return;
    }
    // Steady: plain PF on the active slot.
    const std::uint8_t act = active_[e];
    const auto pas = static_cast<std::uint8_t>(1 - act);
    pcf_mirror_slot(e, act, packet_slot(packet, act));
    // Cancel check: the packet's passive copy must be the exact negation of
    // our frozen passive (Mass::is_negation_of, component-wise exact).
    const Mass& p = packet_slot(packet, pas);
    const double* f = pcf_flow(e, pas);
    bool negation = p.w == -f[dim_];
    for (std::size_t k = 0; negation && k < dim_; ++k) negation = p.s[k] == -f[k];
    if (negation) {
      double* pending = row(pending_, e);
      for (std::size_t k = 0; k < stride_; ++k) pending[k] = f[k];
      pcf_absorb_passive(i, e);
      ++cycle_[e];  // enter the transition phase
    }
  } else if (r_p + 1 == cycle_[e]) {
    // Completer one phase behind — PF keeps running on the shared active.
    pcf_mirror_slot(e, active_[e], packet_slot(packet, active_[e]));
  }
  // else: stale pipeline leftovers (≥ 2 phases old) — drop.
}

void ArenaFleet::pcf_receive_as_completer(NodeId i, std::size_t e,
                                          const Packet& packet) noexcept {
  const std::uint64_t r_p = packet.role_count;

  if (r_p == cycle_[e] + 1) {
    if (cycle_[e] % 2 == 0) {
      // The initiator cancelled; our mirrored passive absorbs to zero net.
      pcf_absorb_passive(i, e);
      active_[e] = static_cast<std::uint8_t>(1 - active_[e]);
      ++cycle_[e];
      ++role_swaps_[i];
    } else {
      // The initiator adopted our swap — steady phase begins.
      ++cycle_[e];
    }
  } else if (r_p != cycle_[e]) {
    return;  // unreachable under FIFO; drop defensively
  }

  const std::uint8_t act = active_[e];
  const auto pas = static_cast<std::uint8_t>(1 - act);
  if (cycle_[e] % 2 == 1) {
    pcf_mirror_slot(e, pas, packet_slot(packet, pas));
    return;
  }
  pcf_mirror_slot(e, act, packet_slot(packet, act));
  pcf_mirror_slot(e, pas, packet_slot(packet, pas));
}

// ---- untyped dispatchers (facade path) ----

std::optional<ArenaFleet::Send> ArenaFleet::make_message_any(NodeId i, Rng& rng) {
  switch (algorithm_) {
    case Algorithm::kPushSum:
      return make_message<Algorithm::kPushSum>(i, rng);
    case Algorithm::kPushFlow:
      return make_message<Algorithm::kPushFlow>(i, rng);
    case Algorithm::kPushCancelFlow:
      return make_message<Algorithm::kPushCancelFlow>(i, rng);
    case Algorithm::kFlowUpdating:
      return make_message<Algorithm::kFlowUpdating>(i, rng);
    case Algorithm::kCorrectionAllreduce:
      return make_message<Algorithm::kCorrectionAllreduce>(i, rng);
    case Algorithm::kFuMassHybrid:
      return make_message<Algorithm::kFuMassHybrid>(i, rng);
  }
  return std::nullopt;
}

std::optional<ArenaFleet::Send> ArenaFleet::make_message_to_any(NodeId i, NodeId target) {
  switch (algorithm_) {
    case Algorithm::kPushSum:
      return make_message_to<Algorithm::kPushSum>(i, target);
    case Algorithm::kPushFlow:
      return make_message_to<Algorithm::kPushFlow>(i, target);
    case Algorithm::kPushCancelFlow:
      return make_message_to<Algorithm::kPushCancelFlow>(i, target);
    case Algorithm::kFlowUpdating:
      return make_message_to<Algorithm::kFlowUpdating>(i, target);
    case Algorithm::kCorrectionAllreduce:
      return make_message_to<Algorithm::kCorrectionAllreduce>(i, target);
    case Algorithm::kFuMassHybrid:
      return make_message_to<Algorithm::kFuMassHybrid>(i, target);
  }
  return std::nullopt;
}

void ArenaFleet::receive_any(NodeId i, NodeId from, const Packet& packet) {
  const auto slot = slot_of(i, from);
  if (!slot) return;  // stale packet from a removed link (all algorithms)
  switch (algorithm_) {
    case Algorithm::kPushSum:
      receive<Algorithm::kPushSum>(i, from, *slot, packet);
      return;
    case Algorithm::kPushFlow:
      receive<Algorithm::kPushFlow>(i, from, *slot, packet);
      return;
    case Algorithm::kPushCancelFlow:
      receive<Algorithm::kPushCancelFlow>(i, from, *slot, packet);
      return;
    case Algorithm::kFlowUpdating:
      receive<Algorithm::kFlowUpdating>(i, from, *slot, packet);
      return;
    case Algorithm::kCorrectionAllreduce:
      receive<Algorithm::kCorrectionAllreduce>(i, from, *slot, packet);
      return;
    case Algorithm::kFuMassHybrid:
      receive<Algorithm::kFuMassHybrid>(i, from, *slot, packet);
      return;
  }
}

// ---- ArenaReducer facade ----

void ArenaReducer::init(NodeId self, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(self == self_, "arena facade bound to node " << self_ << ", initialized as "
                                                             << self);
  PCF_CHECK_MSG(neighbors.size() == fleet_->degree(self_),
                "neighbor set does not match the arena adjacency");
  PCF_CHECK_MSG(initial.dim() == fleet_->dim(), "initial mass dimension mismatch");
  initialized_ = true;
}

std::optional<Outgoing> ArenaReducer::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  auto send = fleet_->make_message_any(self_, rng);
  if (!send) return std::nullopt;
  Outgoing out;
  out.to = send->to;
  out.packet = std::move(send->packet);
  return out;
}

std::optional<Outgoing> ArenaReducer::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  auto send = fleet_->make_message_to_any(self_, target);
  if (!send) return std::nullopt;
  Outgoing out;
  out.to = send->to;
  out.packet = std::move(send->packet);
  return out;
}

void ArenaReducer::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  fleet_->receive_any(self_, from, packet);
}

std::string_view ArenaReducer::name() const noexcept {
  switch (fleet_->algorithm()) {
    case Algorithm::kPushSum:
      return "push-sum";
    case Algorithm::kPushFlow:
      return "push-flow";
    case Algorithm::kPushCancelFlow:
      return fleet_->config().pcf_variant == PcfVariant::kFast ? "push-cancel-flow/fast"
                                                               : "push-cancel-flow/robust";
    case Algorithm::kFlowUpdating:
      return "flow-updating";
    case Algorithm::kCorrectionAllreduce:
      return "correction-allreduce";
    case Algorithm::kFuMassHybrid:
      return "fu-mass-hybrid";
  }
  return "arena";
}

}  // namespace pcf::core
