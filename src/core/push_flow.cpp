#include "core/push_flow.hpp"

#include "core/state_io.hpp"

#include <cmath>
#include <cstring>

namespace pcf::core {

void PushFlow::init(NodeId /*self*/, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(!neighbors.empty(), "node needs at least one neighbor");
  neighbors_.init(neighbors);
  initial_ = std::move(initial);
  flows_.assign(neighbors_.size(), Mass::zero(initial_.dim()));
  cached_flow_sum_ = Mass::zero(initial_.dim());
  initialized_ = true;
}

Mass PushFlow::flow_sum() const {
  if (config_.pf_cached_flow_sum) return cached_flow_sum_;
  Mass sum = Mass::zero(initial_.dim());
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    // Dead links were zeroed on exclusion; adding them is a no-op but we skip
    // for clarity.
    if (neighbors_.alive_at(slot)) sum += flows_[slot];
  }
  return sum;
}

Mass PushFlow::local_mass() const {
  PCF_CHECK_MSG(initialized_, "local_mass before init");
  return initial_ - flow_sum();
}

std::optional<Outgoing> PushFlow::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  // Sampling yields the slot directly — no id -> slot re-lookup on the hot
  // send path (the sampled slot is live by construction).
  const auto slot = neighbors_.pick_live_slot(rng);
  if (!slot) return std::nullopt;
  return send_to_slot(*slot);
}

std::optional<Outgoing> PushFlow::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot_opt = neighbors_.slot_of(target);
  if (!slot_opt || !neighbors_.alive_at(*slot_opt)) return std::nullopt;
  return send_to_slot(*slot_opt);
}

std::optional<Outgoing> PushFlow::send_to_slot(std::size_t slot) {
  // Virtual send: fold half of the current mass into the flow, then transmit
  // the whole flow variable (physical send). Losing the packet loses nothing:
  // the flow still records the intent and is retransmitted next time.
  const Mass half = local_mass().half();
  flows_[slot] += half;
  if (config_.pf_cached_flow_sum) cached_flow_sum_ += half;
  Outgoing out;
  out.to = neighbors_.id_at(slot);
  out.packet.a = flows_[slot];
  return out;
}

void PushFlow::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  const auto slot = neighbors_.slot_of(from);
  if (!slot || !neighbors_.alive_at(*slot)) return;  // stale packet after exclusion
  if (packet.a.dim() != initial_.dim()) return;      // corrupted beyond use
  // Mirror with exact negation — re-establishes pairwise flow conservation
  // and silently repairs any earlier corruption of flows_[slot].
  const Mass mirrored = packet.a.negated();
  if (config_.pf_cached_flow_sum) {
    cached_flow_sum_ -= flows_[*slot];
    cached_flow_sum_ += mirrored;
  }
  flows_[*slot] = mirrored;
}

void PushFlow::update_data(const Mass& delta) {
  PCF_CHECK_MSG(initialized_, "update_data before init");
  PCF_CHECK_MSG(delta.dim() == initial_.dim(), "update_data dimension mismatch");
  initial_ += delta;  // flows are untouched; estimates re-converge
}

void PushFlow::on_link_down(NodeId j) {
  const auto slot = neighbors_.mark_dead(j);
  if (!slot) return;
  // Algorithmic exclusion (Section II-C): zero the flow. The local mass jumps
  // by the old flow value — for PF that value is arbitrary, which is exactly
  // the restart problem the PCF algorithm fixes.
  if (config_.pf_cached_flow_sum) cached_flow_sum_ -= flows_[*slot];
  flows_[*slot].set_zero();
}

void PushFlow::on_link_up(NodeId j) {
  const auto slot = neighbors_.mark_alive(j);
  if (!slot) return;
  // Re-admit with a blank edge. The slot was zeroed on exclusion (and the
  // cached sum adjusted then); re-zero in case a memory soft error hit the
  // dormant slot in between — the cache never saw that corruption either.
  flows_[*slot].set_zero();
}

bool PushFlow::corrupt_stored_flow(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "corrupt_stored_flow before init");
  const auto slot = static_cast<std::size_t>(rng.below(flows_.size()));
  const auto component = static_cast<std::size_t>(rng.below(flows_[slot].dim() + 1));
  double& victim = component < flows_[slot].dim() ? flows_[slot].s[component] : flows_[slot].w;
  std::uint64_t bit = rng.below(53);
  if (bit == 52) bit = 63;  // sign bit
  std::uint64_t bits;
  std::memcpy(&bits, &victim, sizeof bits);
  bits ^= (std::uint64_t{1} << bit);
  std::memcpy(&victim, &bits, sizeof bits);
  // Note: the cached-flow-sum ablation variant deliberately does NOT learn of
  // the corruption — that desynchronization is exactly what it ablates.
  return true;
}

double PushFlow::max_abs_flow_component() const noexcept {
  double best = 0.0;
  for (std::size_t slot = 0; slot < flows_.size(); ++slot) {
    if (!neighbors_.alive_at(slot)) continue;
    for (double v : flows_[slot].s) best = std::max(best, std::fabs(v));
    best = std::max(best, std::fabs(flows_[slot].w));
  }
  return best;
}

Mass PushFlow::unreceived_mass(NodeId from, const Packet& packet) const {
  PCF_CHECK_MSG(initialized_, "unreceived_mass before init");
  Mass none = Mass::zero(initial_.dim());
  const auto slot = neighbors_.slot_of(from);
  // Same acceptance conditions as on_receive.
  if (!slot || !neighbors_.alive_at(*slot) || packet.a.dim() != initial_.dim()) return none;
  // Delivery overwrites the mirror with −packet.a; the mass is the derived
  // state initial − Σ flows, so Δmass = f_old − f_new = f_old + packet.a.
  return flows_[*slot] + packet.a;
}

std::size_t PushFlow::flows_toward(NodeId j, std::span<Mass> out) const {
  const auto slot = neighbors_.slot_of(j);
  if (!slot || !neighbors_.alive_at(*slot) || out.empty()) return 0;
  out[0] = flows_[*slot];
  return 1;
}

const Mass& PushFlow::flow_to(NodeId j) const {
  const auto slot = neighbors_.slot_of(j);
  PCF_CHECK_MSG(slot.has_value(), "flow_to: node " << j << " is not a neighbor");
  return flows_[*slot];
}

void PushFlow::save_state(BinaryWriter& w) const {
  PCF_CHECK_MSG(initialized_, "save_state before init");
  neighbors_.save_state(w);
  write_mass(w, initial_);  // mutable via update_data
  for (const Mass& f : flows_) write_mass(w, f);
  write_mass(w, cached_flow_sum_);
}

void PushFlow::load_state(BinaryReader& r) {
  PCF_CHECK_MSG(initialized_, "load_state before init");
  neighbors_.load_state(r);
  initial_ = read_mass(r);
  for (Mass& f : flows_) f = read_mass(r);
  cached_flow_sum_ = read_mass(r);
}

}  // namespace pcf::core
