#include "core/push_sum.hpp"

#include "core/state_io.hpp"

namespace pcf::core {

void PushSum::init(NodeId /*self*/, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(!neighbors.empty(), "node needs at least one neighbor");
  neighbors_.init(neighbors);
  mass_ = std::move(initial);
  initialized_ = true;
}

std::optional<Outgoing> PushSum::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  // Sampling yields the slot directly — no id -> slot re-lookup on the hot
  // send path (the sampled slot is live by construction).
  const auto slot = neighbors_.pick_live_slot(rng);
  if (!slot) return std::nullopt;
  return send_to_slot(*slot);
}

std::optional<Outgoing> PushSum::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot = neighbors_.slot_of(target);
  if (!slot || !neighbors_.alive_at(*slot)) return std::nullopt;
  return send_to_slot(*slot);
}

std::optional<Outgoing> PushSum::send_to_slot(std::size_t slot) {
  // Keep half, push half. The pushed mass leaves this node immediately; if
  // the packet is lost, the mass is gone — that is push-sum's fragility.
  const Mass share = mass_.half();
  mass_ -= share;
  Outgoing out;
  out.to = neighbors_.id_at(slot);
  out.packet.a = share;
  return out;
}

void PushSum::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  if (!neighbors_.slot_of(from)) return;  // stale packet from a removed link
  mass_ += packet.a;
}

void PushSum::update_data(const Mass& delta) {
  PCF_CHECK_MSG(initialized_, "update_data before init");
  PCF_CHECK_MSG(delta.dim() == mass_.dim(), "update_data dimension mismatch");
  // Push-sum has no separate input state; the delta joins the in-flight mass.
  mass_ += delta;
}

Mass PushSum::unreceived_mass(NodeId from, const Packet& packet) const {
  PCF_CHECK_MSG(initialized_, "unreceived_mass before init");
  // Mirrors on_receive: a packet from a non-neighbor is ignored, everything
  // else adds its share outright.
  if (!neighbors_.slot_of(from) || packet.a.dim() != mass_.dim()) {
    return Mass::zero(mass_.dim());
  }
  return packet.a;
}

void PushSum::on_link_down(NodeId j) {
  // Push-sum has no flow state to roll back: mass already in flight to or
  // from the dead link is simply lost. We only stop selecting the neighbor.
  (void)neighbors_.mark_dead(j);
}

void PushSum::on_link_up(NodeId j) {
  // No per-edge state to rebuild; just start selecting the neighbor again.
  (void)neighbors_.mark_alive(j);
}

void PushSum::save_state(BinaryWriter& w) const {
  PCF_CHECK_MSG(initialized_, "save_state before init");
  neighbors_.save_state(w);
  write_mass(w, mass_);
}

void PushSum::load_state(BinaryReader& r) {
  PCF_CHECK_MSG(initialized_, "load_state before init");
  neighbors_.load_state(r);
  mass_ = read_mass(r);
}

}  // namespace pcf::core
