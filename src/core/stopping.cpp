#include "core/stopping.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pcf::core {

LocalStop::LocalStop(std::size_t num_nodes, double rel_tol, std::size_t patience)
    : rel_tol_(rel_tol),
      patience_(patience),
      last_(num_nodes, 0.0),
      quiet_(num_nodes, 0),
      seen_(num_nodes, false) {
  PCF_CHECK_MSG(num_nodes > 0, "LocalStop needs nodes");
  PCF_CHECK_MSG(rel_tol > 0.0, "LocalStop needs a positive tolerance");
  PCF_CHECK_MSG(patience > 0, "LocalStop needs positive patience");
}

bool LocalStop::observe(std::size_t node, double estimate) {
  PCF_CHECK_MSG(node < last_.size(), "LocalStop node out of range");
  if (!seen_[node]) {
    seen_[node] = true;
    last_[node] = estimate;
    quiet_[node] = 0;
    return false;
  }
  const double scale = std::max({std::fabs(estimate), std::fabs(last_[node]), 1e-300});
  const double change = std::fabs(estimate - last_[node]) / scale;
  last_[node] = estimate;
  if (std::isfinite(change) && change <= rel_tol_) {
    ++quiet_[node];
  } else {
    quiet_[node] = 0;
  }
  return node_converged(node);
}

std::size_t LocalStop::converged_count() const {
  std::size_t count = 0;
  for (std::size_t q : quiet_) {
    if (q >= patience_) ++count;
  }
  return count;
}

void LocalStop::reset(std::size_t node) {
  PCF_CHECK_MSG(node < last_.size(), "LocalStop node out of range");
  quiet_[node] = 0;
  seen_[node] = false;
}

bool FixedPointStop::observe(std::span<const double> estimates) {
  if (last_.size() != estimates.size()) {
    last_.assign(estimates.begin(), estimates.end());
    quiet_rounds_ = 0;
    return false;
  }
  const bool unchanged = std::equal(estimates.begin(), estimates.end(), last_.begin(),
                                    [](double a, double b) {
                                      // bit-for-bit, but NaN-stable
                                      return a == b || (std::isnan(a) && std::isnan(b));
                                    });
  if (unchanged) {
    ++quiet_rounds_;
  } else {
    quiet_rounds_ = 0;
    last_.assign(estimates.begin(), estimates.end());
  }
  return quiet_rounds_ >= window_;
}

}  // namespace pcf::core
