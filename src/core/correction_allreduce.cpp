#include "core/correction_allreduce.hpp"

#include "core/state_io.hpp"

#include <cstring>

namespace pcf::core {

void CorrectionAllreduce::init(NodeId self, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(!neighbors.empty(), "node needs at least one neighbor");
  PCF_CHECK_MSG(config_.tree != nullptr,
                "correction-allreduce needs a resolved tree schedule "
                "(engines build one; direct construction must supply it)");
  const net::TreeSchedule& tree = *config_.tree;
  PCF_CHECK_MSG(self < tree.parent.size(), "tree schedule does not cover node " << self);
  neighbors_.init(neighbors);
  self_ = self;
  initial_ = std::move(initial);
  received_.assign(neighbors_.size(), Mass::zero(initial_.dim()));
  have_received_.assign(neighbors_.size(), false);
  child_.assign(neighbors_.size(), false);
  for (std::size_t slot = 0; slot < neighbors_.size(); ++slot) {
    const NodeId j = neighbors_.id_at(slot);
    PCF_CHECK_MSG(j < tree.parent.size(), "tree schedule does not cover node " << j);
    // Static child set: j's published parent is us. Claims in received
    // packets keep this current as the live tree deviates from the schedule.
    child_[slot] = tree.parent[j] == self_;
  }
  global_ = Mass::zero(initial_.dim());
  initialized_ = true;
}

std::optional<std::size_t> CorrectionAllreduce::current_parent_slot() const {
  const net::TreeSchedule& tree = *config_.tree;
  std::optional<std::size_t> best;
  std::uint32_t best_depth = tree.depth[self_];
  for (std::size_t slot = 0; slot < neighbors_.size(); ++slot) {
    if (!neighbors_.alive_at(slot)) continue;
    const std::uint32_t d = tree.depth[neighbors_.id_at(slot)];
    if (d < best_depth) {  // strict <: ascending slots already break id ties
      best = slot;
      best_depth = d;
    }
  }
  return best;
}

std::optional<NodeId> CorrectionAllreduce::current_parent() const {
  PCF_CHECK_MSG(initialized_, "current_parent before init");
  const auto slot = current_parent_slot();
  if (!slot) return std::nullopt;
  return neighbors_.id_at(*slot);
}

Mass CorrectionAllreduce::subtree_sum() const {
  Mass s = initial_;
  for (std::size_t slot = 0; slot < received_.size(); ++slot) {
    if (!neighbors_.alive_at(slot) || !child_[slot] || !have_received_[slot]) continue;
    s += received_[slot];
  }
  return s;
}

double CorrectionAllreduce::estimate(std::size_t k) const {
  PCF_CHECK_MSG(initialized_, "estimate before init");
  if (have_global_ && current_parent_slot().has_value()) return global_.estimate(k);
  return subtree_sum().estimate(k);
}

std::optional<Outgoing> CorrectionAllreduce::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot = neighbors_.pick_live_slot(rng);
  if (!slot) return std::nullopt;
  return send_to_slot(*slot);
}

std::optional<Outgoing> CorrectionAllreduce::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot_opt = neighbors_.slot_of(target);
  if (!slot_opt || !neighbors_.alive_at(*slot_opt)) return std::nullopt;
  return send_to_slot(*slot_opt);
}

std::optional<Outgoing> CorrectionAllreduce::send_to_slot(std::size_t slot) {
  const Mass s = subtree_sum();
  const auto parent_slot = current_parent_slot();

  Outgoing out;
  out.to = neighbors_.id_at(slot);
  out.packet.a = s;
  out.packet.role_count =
      parent_slot ? static_cast<std::uint64_t>(neighbors_.id_at(*parent_slot)) + 1 : 0;
  if (!parent_slot) {
    out.packet.b = s;  // the (fragment) root's subtree sum IS the global view
    out.packet.active_slot = 2;
  } else if (have_global_) {
    out.packet.b = global_;
    out.packet.active_slot = 2;
  } else {
    out.packet.b = Mass::zero(initial_.dim());
    out.packet.active_slot = 1;  // b carries nothing yet
  }
  return out;
}

void CorrectionAllreduce::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  const auto slot = neighbors_.slot_of(from);
  if (!slot || !neighbors_.alive_at(*slot)) return;
  if (packet.a.dim() != initial_.dim() || packet.b.dim() != initial_.dim()) return;
  if (packet.active_slot != 1 && packet.active_slot != 2) return;  // corrupted header
  // The claim keeps our child set current: a neighbor that re-attached
  // elsewhere revokes itself with its next packet, a (re)attached child
  // enrolls with its report.
  const bool claims_us = packet.role_count == static_cast<std::uint64_t>(self_) + 1;
  child_[*slot] = claims_us;
  if (claims_us) {
    received_[*slot] = packet.a;
    have_received_[*slot] = true;
  } else {
    have_received_[*slot] = false;
  }
  if (packet.active_slot == 2) {
    const auto parent_slot = current_parent_slot();
    if (parent_slot && *parent_slot == *slot) {
      global_ = packet.b;
      have_global_ = true;
    }
  }
}

void CorrectionAllreduce::update_data(const Mass& delta) {
  PCF_CHECK_MSG(initialized_, "update_data before init");
  PCF_CHECK_MSG(delta.dim() == initial_.dim(), "update_data dimension mismatch");
  initial_ += delta;
}

void CorrectionAllreduce::on_link_down(NodeId j) {
  const auto parent_slot = current_parent_slot();
  const auto slot = neighbors_.mark_dead(j);
  if (!slot) return;
  received_[*slot].set_zero();
  have_received_[*slot] = false;
  child_[*slot] = false;
  // Losing the parent drops the global view: until the re-attached (or
  // fragment-root) position receives a fresh one, the subtree sum is the
  // honest estimate.
  if (parent_slot && *parent_slot == *slot) have_global_ = false;
}

void CorrectionAllreduce::on_link_up(NodeId j) {
  const auto slot = neighbors_.mark_alive(j);
  if (!slot) return;
  // Blank edge: no claim, no report, until j's first packet.
  received_[*slot].set_zero();
  have_received_[*slot] = false;
  child_[*slot] = false;
}

bool CorrectionAllreduce::corrupt_stored_flow(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "corrupt_stored_flow before init");
  // Victim: one stored child report, or (last index) the global view. Both
  // are absolute quantities the next periodic resend overwrites — the
  // correction mechanism doubles as soft-error healing.
  const auto victim_index = static_cast<std::size_t>(rng.below(received_.size() + 1));
  Mass& victim_mass = victim_index < received_.size() ? received_[victim_index] : global_;
  const auto component = static_cast<std::size_t>(rng.below(victim_mass.dim() + 1));
  double& victim = component < victim_mass.dim() ? victim_mass.s[component] : victim_mass.w;
  std::uint64_t bit = rng.below(53);
  if (bit == 52) bit = 63;  // sign bit
  std::uint64_t bits;
  std::memcpy(&bits, &victim, sizeof bits);
  bits ^= (std::uint64_t{1} << bit);
  std::memcpy(&victim, &bits, sizeof bits);
  return true;
}

Mass CorrectionAllreduce::unreceived_mass(NodeId /*from*/, const Packet& /*packet*/) const {
  PCF_CHECK_MSG(initialized_, "unreceived_mass before init");
  // Delivering a packet never changes local_mass() — reports carry no
  // conserved mass.
  return Mass::zero(initial_.dim());
}

void CorrectionAllreduce::save_state(BinaryWriter& w) const {
  PCF_CHECK_MSG(initialized_, "save_state before init");
  neighbors_.save_state(w);
  write_mass(w, initial_);  // mutable via update_data
  for (std::size_t slot = 0; slot < received_.size(); ++slot) {
    write_mass(w, received_[slot]);
    w.boolean(have_received_[slot]);
    w.boolean(child_[slot]);
  }
  write_mass(w, global_);
  w.boolean(have_global_);
}

void CorrectionAllreduce::load_state(BinaryReader& r) {
  PCF_CHECK_MSG(initialized_, "load_state before init");
  neighbors_.load_state(r);
  initial_ = read_mass(r);
  for (std::size_t slot = 0; slot < received_.size(); ++slot) {
    received_[slot] = read_mass(r);
    have_received_[slot] = r.boolean();
    child_[slot] = r.boolean();
  }
  global_ = read_mass(r);
  have_global_ = r.boolean();
}

}  // namespace pcf::core
