// Correction-based fault-tolerant Allreduce (Küttler & Härtig, "Fault-
// tolerant Reduce and Allreduce operations based on correction"), recast
// onto this repo's gossip pacing.
//
// The protocol runs over a spanning tree of the topology (net::TreeSchedule).
// Every node repeatedly publishes its SUBTREE SUM — its own input plus the
// last reported sums of its current children — and the root's subtree sum,
// the exact global aggregate once every report has arrived, is propagated
// back down as the shared estimate. All reports are *absolute* and therefore
// idempotent: loss, duplication and reordering are corrected by the next
// periodic resend, which is the paper's correction mechanism in its
// steady-state form.
//
// Every packet is the node's full status, regardless of the drawn receiver:
//   a           the sender's current subtree sum
//   b           the sender's global view (valid iff active_slot == 2; the
//               root publishes its own subtree sum here)
//   role_count  the sender's current parent id + 1 (0 = fragment root) — the
//               receiver derives its child set from these claims, so parent
//               revocations need no extra message type
//
// Failure handling (the correction rounds): a node whose parent link is
// excluded re-attaches to its (depth, id)-minimal live neighbor of strictly
// smaller STATIC tree depth — strictly decreasing depth keeps parent chains
// acyclic without any coordination. If no such neighbor is live the node
// becomes a fragment root and honestly reports its fragment's aggregate;
// that graceful-degradation cliff under churn is exactly the trade-off the
// chaos harness charts against the gossip algorithms. The current parent is
// a pure function of the live neighbor set and the static schedule — it is
// recomputed on demand and never serialized.
//
// Unlike the flow family, no mass ever moves: local_mass() is the input
// itself, so conservation is trivial and crashed nodes' in-flight packets
// carry no unreceived mass.
#pragma once

#include <vector>

#include "core/neighbor_set.hpp"
#include "core/reducer.hpp"

namespace pcf::core {

class CorrectionAllreduce final : public Reducer {
 public:
  explicit CorrectionAllreduce(const ReducerConfig& config) : config_(config) {}

  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  /// The conserved quantity: the input v_i itself (no mass ever moves).
  [[nodiscard]] Mass local_mass() const override { return initial_; }
  /// Global view when one has arrived; the subtree (or fragment) sum before
  /// the first down-propagation and while this node is a fragment root.
  [[nodiscard]] double estimate(std::size_t k = 0) const override;
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  void update_data(const Mass& delta) override;
  void save_state(BinaryWriter& w) const override;
  void load_state(BinaryReader& r) override;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "correction-allreduce";
  }
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return neighbors_.live_count();
  }
  [[nodiscard]] std::size_t wire_masses() const noexcept override { return 2; }
  /// Corrupts a stored child report (or the global view) — both self-heal on
  /// the next periodic resend because all reports are absolute.
  bool corrupt_stored_flow(Rng& rng) override;
  [[nodiscard]] Mass unreceived_mass(NodeId from, const Packet& packet) const override;

  /// Test/introspection hook: the current parent id, or nullopt while this
  /// node is the (fragment) root.
  [[nodiscard]] std::optional<NodeId> current_parent() const;

 private:
  [[nodiscard]] std::optional<Outgoing> send_to_slot(std::size_t slot);
  /// Slot of the (depth, id)-minimal live neighbor at strictly smaller
  /// static depth, or nullopt when this node is the (fragment) root.
  [[nodiscard]] std::optional<std::size_t> current_parent_slot() const;
  /// v_i plus the reports of all current live children, in slot order.
  [[nodiscard]] Mass subtree_sum() const;

  ReducerConfig config_;
  NeighborSet neighbors_;
  NodeId self_ = 0;
  Mass initial_;
  std::vector<Mass> received_;     ///< last child report, per slot
  std::vector<bool> have_received_;
  std::vector<bool> child_;        ///< neighbor currently claims us as parent
  Mass global_;                    ///< last global view from the parent
  bool have_global_ = false;
  bool initialized_ = false;
};

}  // namespace pcf::core
