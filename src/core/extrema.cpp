#include "core/extrema.hpp"

#include "core/state_io.hpp"

#include <algorithm>

namespace pcf::core {

void ExtremaGossip::init(NodeId /*self*/, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(!neighbors.empty(), "node needs at least one neighbor");
  PCF_CHECK_MSG(initial.dim() == 1, "extrema gossip takes a scalar sample");
  neighbors_.init(neighbors);
  min_ = initial.s[0];
  max_ = initial.s[0];
  initialized_ = true;
}

Mass ExtremaGossip::local_mass() const {
  PCF_CHECK_MSG(initialized_, "local_mass before init");
  return Mass(Values{min_, max_}, 1.0);
}

std::optional<Outgoing> ExtremaGossip::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto target = neighbors_.pick_live(rng);
  if (!target) return std::nullopt;
  return make_message_to(*target);
}

std::optional<Outgoing> ExtremaGossip::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot = neighbors_.slot_of(target);
  if (!slot || !neighbors_.alive_at(*slot)) return std::nullopt;
  Outgoing out;
  out.to = target;
  out.packet.a = local_mass();
  return out;
}

void ExtremaGossip::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  if (!neighbors_.slot_of(from)) return;
  if (packet.a.dim() != 2) return;  // corrupted beyond use
  // Monotone merge: duplicates and reordering are free.
  min_ = std::min(min_, packet.a.s[0]);
  max_ = std::max(max_, packet.a.s[1]);
}

void ExtremaGossip::on_link_down(NodeId j) {
  // Nothing to roll back: extrema already learned through the link stay
  // valid knowledge (with the documented un-learnability caveat).
  (void)neighbors_.mark_dead(j);
}

void ExtremaGossip::on_link_up(NodeId j) {
  // Monotone merges make recovery trivial: resume gossiping with j.
  (void)neighbors_.mark_alive(j);
}

void ExtremaGossip::update_data(const Mass& delta) {
  PCF_CHECK_MSG(initialized_, "update_data before init");
  PCF_CHECK_MSG(delta.dim() == 1, "extrema update takes a scalar sample");
  // A live data update is a NEW SAMPLE, merged monotonically. (A sample that
  // shrinks the range cannot take effect — inherent to min/max gossip.)
  min_ = std::min(min_, delta.s[0]);
  max_ = std::max(max_, delta.s[0]);
}

void ExtremaGossip::save_state(BinaryWriter& w) const {
  PCF_CHECK_MSG(initialized_, "save_state before init");
  neighbors_.save_state(w);
  w.f64(min_);
  w.f64(max_);
}

void ExtremaGossip::load_state(BinaryReader& r) {
  PCF_CHECK_MSG(initialized_, "load_state before init");
  neighbors_.load_state(r);
  min_ = r.f64();
  max_ = r.f64();
}

}  // namespace pcf::core
