// Flow Updating (Jesus, Baquero, Almeida — DAIS 2009), gossip-paced variant.
//
// Another flow-based fault-tolerant aggregation protocol, included as the
// baseline family the paper's related work cites. A node keeps, per neighbor,
// a flow f_{i,j} and the neighbor's last reported fused estimate ê_j. Each
// step it fuses its own mass with the neighborhood estimates,
//
//     a_i = ( (v_i − Σ_j f_{i,j}) + Σ_j ê_j ) / (|N_i| + 1),
//
// then adjusts the flow toward the chosen neighbor so that the neighbor's
// view moves to a_i, and transmits (f_{i,j}, a_i). The receiver overwrites
// its mirror flow with the exact negation, which gives FU the same
// self-healing against message loss / flow corruption as push-flow.
//
// Deviations from the DAIS'09 paper (documented in DESIGN.md):
//  * the original broadcasts to all neighbors every tick; to share the
//    engines' one-message-per-step gossip pacing we update/transmit toward a
//    single uniformly random neighbor per step (the averaging step itself
//    still fuses over the whole neighborhood);
//  * payloads are (s, w) mass pairs averaged component-wise, so SUM is
//    supported through the ratio of averages (avg x / avg w = Σx / Σw).
#pragma once

#include <vector>

#include "core/neighbor_set.hpp"
#include "core/reducer.hpp"

namespace pcf::core {

class FlowUpdating final : public Reducer {
 public:
  explicit FlowUpdating(const ReducerConfig& config) : config_(config) {}

  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  /// The conserved quantity: v_i − Σ_j f_{i,j}.
  [[nodiscard]] Mass local_mass() const override;
  /// Fused neighborhood estimate ratio (a_i), not the raw mass ratio.
  [[nodiscard]] double estimate(std::size_t k = 0) const override;
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  void update_data(const Mass& delta) override;
  void save_state(BinaryWriter& w) const override;
  void load_state(BinaryReader& r) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "flow-updating"; }
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return neighbors_.live_count();
  }
  [[nodiscard]] double max_abs_flow_component() const noexcept override;
  [[nodiscard]] std::size_t wire_masses() const noexcept override { return 2; }
  bool corrupt_stored_flow(Rng& rng) override;
  [[nodiscard]] std::size_t flows_toward(NodeId j, std::span<Mass> out) const override;
  [[nodiscard]] Mass unreceived_mass(NodeId from, const Packet& packet) const override;

 private:
  [[nodiscard]] std::optional<Outgoing> send_to_slot(std::size_t slot);
  /// Component-wise fused average over own mass and live neighbor estimates.
  [[nodiscard]] Mass fused() const;

  ReducerConfig config_;
  NeighborSet neighbors_;
  Mass initial_;
  std::vector<Mass> flows_;      // f_{i,j}
  std::vector<Mass> estimates_;  // ê_j as last reported by neighbor j
  std::vector<bool> have_estimate_;
  bool initialized_ = false;
};

}  // namespace pcf::core
