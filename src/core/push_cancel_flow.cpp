#include "core/push_cancel_flow.hpp"

#include "core/state_io.hpp"

#include <cmath>
#include <cstring>

namespace pcf::core {

namespace {
const Mass& packet_slot(const Packet& packet, std::uint8_t slot) {
  return slot == 0 ? packet.a : packet.b;
}
}  // namespace

void PushCancelFlow::init(NodeId self, std::span<const NodeId> neighbors, Mass initial) {
  PCF_CHECK_MSG(!initialized_, "reducer initialized twice");
  PCF_CHECK_MSG(!neighbors.empty(), "node needs at least one neighbor");
  neighbors_.init(neighbors);
  self_ = self;
  initial_ = std::move(initial);
  EdgeState blank;
  blank.flow = {Mass::zero(initial_.dim()), Mass::zero(initial_.dim())};
  blank.pending_absorbed = Mass::zero(initial_.dim());
  edges_.assign(neighbors_.size(), blank);
  phi_ = Mass::zero(initial_.dim());
  initialized_ = true;
}

Mass PushCancelFlow::explicit_flow_sum() const {
  Mass sum = Mass::zero(initial_.dim());
  for (std::size_t slot = 0; slot < edges_.size(); ++slot) {
    if (!neighbors_.alive_at(slot)) continue;
    sum += edges_[slot].flow[0];
    sum += edges_[slot].flow[1];
  }
  return sum;
}

Mass PushCancelFlow::local_mass() const {
  PCF_CHECK_MSG(initialized_, "local_mass before init");
  if (config_.pcf_variant == PcfVariant::kFast) {
    // ϕ already equals (absorbed + live flows); cheapest form (Fig. 5).
    return initial_ - phi_;
  }
  // Robust variant: the live slots are summed fresh so that a corrupted slot
  // that has since been healed by mirroring no longer poisons the estimate.
  return initial_ - phi_ - explicit_flow_sum();
}

std::optional<Outgoing> PushCancelFlow::make_message(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  // Sampling yields the slot directly — no id -> slot re-lookup on the hot
  // send path (the sampled slot is live by construction).
  const auto slot = neighbors_.pick_live_slot(rng);
  if (!slot) return std::nullopt;
  return send_to_slot(*slot);
}

std::optional<Outgoing> PushCancelFlow::make_message_to(NodeId target) {
  PCF_CHECK_MSG(initialized_, "make_message before init");
  const auto slot_opt = neighbors_.slot_of(target);
  if (!slot_opt || !neighbors_.alive_at(*slot_opt)) return std::nullopt;
  return send_to_slot(*slot_opt);
}

std::optional<Outgoing> PushCancelFlow::send_to_slot(std::size_t slot) {
  EdgeState& edge = edges_[slot];

  // Identical to PF but applied to the edge's *active* slot only.
  const Mass half = local_mass().half();
  edge.flow[edge.active] += half;
  if (config_.pcf_variant == PcfVariant::kFast) phi_ += half;

  Outgoing out;
  out.to = neighbors_.id_at(slot);
  out.packet.a = edge.flow[0];
  out.packet.b = edge.flow[1];
  out.packet.active_slot = static_cast<std::uint8_t>(edge.active + 1);  // wire: 1-based
  out.packet.role_count = edge.cycle;
  return out;
}

void PushCancelFlow::mirror_slot(EdgeState& edge, std::uint8_t slot, const Mass& received) {
  const Mass mirrored = received.negated();
  if (config_.pcf_variant == PcfVariant::kFast) {
    // ϕ += (new − old) keeps ϕ == absorbed + Σ live flows.
    phi_ -= edge.flow[slot];
    phi_ += mirrored;
  }
  edge.flow[slot] = mirrored;
}

void PushCancelFlow::absorb_passive(EdgeState& edge) {
  const std::uint8_t pas = static_cast<std::uint8_t>(1 - edge.active);
  if (config_.pcf_variant == PcfVariant::kRobust) {
    phi_ += edge.flow[pas];
  }
  // (fast: leaving ϕ untouched while zeroing the slot performs the same
  // absorption implicitly — the slot's mass moves from "live flows" to
  // "absorbed" inside ϕ.)
  edge.flow[pas].set_zero();
}

// Phase model: r is a PHASE counter, two phases per cancellation cycle.
//  r even (steady)     — both endpoints aligned; PF runs on the active slot;
//                        the initiator's passive copy is frozen, the
//                        completer's mirrors it.
//  r odd  (transition) — the initiator absorbed the passive pair; the
//                        completer follows by absorbing its (mirrored) copy
//                        and swapping; the initiator swaps when it sees the
//                        completer's odd-phase traffic.
// FIFO per direction gives the key exactness property: every steady-phase
// packet of the completer was sent after it mirrored the initiator's frozen
// passive value, so the initiator's equality check at cancellation certifies
// that the two absorbed halves are exact negations.

void PushCancelFlow::receive_as_initiator(EdgeState& edge, const Packet& packet) {
  const std::uint64_t r_p = packet.role_count;

  if (r_p == edge.cycle) {
    if (edge.cycle % 2 == 1) {
      // Transition: the completer completed and swapped — adopt. Our copy of
      // the new passive (the old active) is frozen as of this moment.
      edge.active = static_cast<std::uint8_t>(1 - edge.active);
      edge.pending_absorbed.set_zero();  // handshake balanced on both sides
      ++edge.cycle;
      ++role_swaps_;
      // Fall through into the new steady phase: mirror the completer's fresh
      // pushes; its passive copy predates our freeze, so no cancel check yet
      // (r_p is now one behind, matching the branch below).
      mirror_slot(edge, edge.active, packet_slot(packet, edge.active));
      return;
    }
    // Steady: plain PF on the active slot.
    const std::uint8_t act = edge.active;
    const std::uint8_t pas = static_cast<std::uint8_t>(1 - act);
    mirror_slot(edge, act, packet_slot(packet, act));
    // Every steady packet of the completer carries the exact negation of our
    // frozen passive (see note above); the equality check is a safety net
    // against loss-reordering and corruption.
    if (packet_slot(packet, pas).is_negation_of(edge.flow[pas])) {
      edge.pending_absorbed = edge.flow[pas];
      absorb_passive(edge);
      ++edge.cycle;  // enter the transition phase
    }
    // NOTE: the initiator never mirrors its passive (write-once per cycle).
  } else if (r_p + 1 == edge.cycle) {
    // Completer one phase behind — in either parity its active slot equals
    // ours (swaps happen completer-first), so PF keeps running there.
    mirror_slot(edge, edge.active, packet_slot(packet, edge.active));
  }
  // else: stale pipeline leftovers (≥ 2 phases old) — their "active" is our
  // frozen passive; drop.
}

void PushCancelFlow::receive_as_completer(EdgeState& edge, const Packet& packet) {
  const std::uint64_t r_p = packet.role_count;

  if (r_p == edge.cycle + 1) {
    if (edge.cycle % 2 == 0) {
      // The initiator cancelled. Our passive copy mirrors its frozen value,
      // so absorbing it nets to zero against the initiator's absorption.
      absorb_passive(edge);
      edge.active = static_cast<std::uint8_t>(1 - edge.active);
      ++edge.cycle;
      ++role_swaps_;
      // Fall through to the transition rules for this packet.
    } else {
      // The initiator adopted our swap — steady phase begins.
      ++edge.cycle;
      // Fall through to the steady rules for this packet.
    }
  } else if (r_p != edge.cycle) {
    return;  // unreachable under FIFO; drop defensively (loss/corruption)
  }

  const std::uint8_t act = edge.active;
  const std::uint8_t pas = static_cast<std::uint8_t>(1 - act);
  if (edge.cycle % 2 == 1) {
    // Transition: the initiator has not swapped yet — it still pushes into
    // the old active slot, which is our passive now. Mirror only that slot;
    // the packet's other slot is the initiator's zeroed copy of our fresh
    // active and must not clobber our pushes.
    mirror_slot(edge, pas, packet_slot(packet, pas));
    return;
  }
  // Steady: PF on the active slot; the passive mirrors the initiator's
  // frozen value (idempotent once aligned).
  mirror_slot(edge, act, packet_slot(packet, act));
  mirror_slot(edge, pas, packet_slot(packet, pas));
}

void PushCancelFlow::on_receive(NodeId from, const Packet& packet) {
  PCF_CHECK_MSG(initialized_, "on_receive before init");
  const auto slot_opt = neighbors_.slot_of(from);
  if (!slot_opt || !neighbors_.alive_at(*slot_opt)) return;  // stale packet
  if (packet.a.dim() != initial_.dim() || packet.b.dim() != initial_.dim()) return;
  if (packet.active_slot != 1 && packet.active_slot != 2) return;  // corrupted header
  EdgeState& edge = edges_[*slot_opt];
  if (self_ < from) {
    receive_as_initiator(edge, packet);
  } else {
    receive_as_completer(edge, packet);
  }
}

void PushCancelFlow::update_data(const Mass& delta) {
  PCF_CHECK_MSG(initialized_, "update_data before init");
  PCF_CHECK_MSG(delta.dim() == initial_.dim(), "update_data dimension mismatch");
  initial_ += delta;  // flows and ϕ are untouched; estimates re-converge
}

void PushCancelFlow::on_link_down(NodeId j) {
  const auto slot = neighbors_.mark_dead(j);
  if (!slot) return;
  EdgeState& edge = edges_[*slot];
  if (config_.pcf_variant == PcfVariant::kFast) {
    // Keep ϕ == absorbed + Σ live flows: fold the dying slots back out.
    phi_ -= edge.flow[0];
    phi_ -= edge.flow[1];
  }
  // Robust variant: local_mass() skips dead slots, so zeroing suffices.
  edge.flow[0].set_zero();
  edge.flow[1].set_zero();
  if (self_ < j && edge.cycle % 2 == 1) {
    // Un-absorb the half of a cancellation the peer (very likely) never
    // completed: its explicit copy just died with the link, so keeping our
    // absorbed half would permanently remove that mass from the computation.
    // (If the peer DID complete and its swap notification was exactly the
    // packet the failure destroyed, this rollback itself creates the bias —
    // a two-generals window that no local rule can close; it is one packet
    // flight wide, versus the whole cancellation window without rollback.)
    phi_ -= edge.pending_absorbed;
    edge.pending_absorbed.set_zero();
  }
}

void PushCancelFlow::on_link_up(NodeId j) {
  const auto slot = neighbors_.mark_alive(j);
  if (!slot) return;
  // Re-admit with a factory-fresh edge: zero flows, slot 1 active, cycle 0.
  // Both endpoints get their own on_link_up, so the handshake restarts
  // aligned in a steady phase. ϕ needs no adjustment in either variant: the
  // dying flows were folded out on exclusion, and a soft error hitting the
  // dormant slot never entered ϕ (mirror_slot only runs on live edges).
  EdgeState& edge = edges_[*slot];
  edge.flow[0].set_zero();
  edge.flow[1].set_zero();
  edge.active = 0;
  edge.cycle = 0;
  edge.pending_absorbed.set_zero();
}

bool PushCancelFlow::corrupt_stored_flow(Rng& rng) {
  PCF_CHECK_MSG(initialized_, "corrupt_stored_flow before init");
  const auto edge_index = static_cast<std::size_t>(rng.below(edges_.size()));
  Mass& flow = edges_[edge_index].flow[rng.below(2)];
  const auto component = static_cast<std::size_t>(rng.below(flow.dim() + 1));
  double& victim = component < flow.dim() ? flow.s[component] : flow.w;
  std::uint64_t bit = rng.below(53);
  if (bit == 52) bit = 63;  // sign bit
  std::uint64_t bits;
  std::memcpy(&bits, &victim, sizeof bits);
  bits ^= (std::uint64_t{1} << bit);
  std::memcpy(&victim, &bits, sizeof bits);
  // The fast variant's ϕ is NOT adjusted — a memory error corrupts the flow
  // behind ϕ's back, and every subsequent incremental ϕ update bakes the
  // delta in. The robust variant re-sums the (healed) slots, so it recovers.
  return true;
}

double PushCancelFlow::max_abs_flow_component() const noexcept {
  double best = 0.0;
  for (std::size_t slot = 0; slot < edges_.size(); ++slot) {
    if (!neighbors_.alive_at(slot)) continue;
    for (const Mass& f : edges_[slot].flow) {
      for (double v : f.s) best = std::max(best, std::fabs(v));
      best = std::max(best, std::fabs(f.w));
    }
  }
  return best;
}

std::size_t PushCancelFlow::flows_toward(NodeId j, std::span<Mass> out) const {
  const auto slot = neighbors_.slot_of(j);
  if (!slot || !neighbors_.alive_at(*slot) || out.size() < 2) return 0;
  out[0] = edges_[*slot].flow[0];
  out[1] = edges_[*slot].flow[1];
  return 2;
}

Mass PushCancelFlow::unreceived_mass(NodeId from, const Packet& packet) const {
  PCF_CHECK_MSG(initialized_, "unreceived_mass before init");
  Mass delta = Mass::zero(initial_.dim());
  const auto slot_opt = neighbors_.slot_of(from);
  // Same acceptance conditions as on_receive.
  if (!slot_opt || !neighbors_.alive_at(*slot_opt)) return delta;
  if (packet.a.dim() != initial_.dim() || packet.b.dim() != initial_.dim()) return delta;
  if (packet.active_slot != 1 && packet.active_slot != 2) return delta;

  // Replays the receive phase rules without mutating: determine which slots
  // the packet would mirror and sum their mass deltas. Mirroring slot s to
  // −packet[s] changes local_mass by f_old[s] + packet[s]; absorptions and
  // role swaps move mass between ϕ and the slots and are mass-neutral, so
  // they do not contribute.
  const EdgeState& edge = edges_[*slot_opt];
  const std::uint64_t r_p = packet.role_count;
  const auto mirror_delta = [&](std::uint8_t s) {
    delta += edge.flow[s] + packet_slot(packet, s);
  };

  if (self_ < from) {  // we are the initiator
    if (r_p == edge.cycle) {
      if (edge.cycle % 2 == 1) {
        // Adopting the completer's swap: mirror the new active (old passive).
        mirror_delta(static_cast<std::uint8_t>(1 - edge.active));
      } else {
        mirror_delta(edge.active);  // steady PF; a cancellation is neutral
      }
    } else if (r_p + 1 == edge.cycle) {
      mirror_delta(edge.active);
    }
    // else: stale pipeline leftovers — dropped.
    return delta;
  }

  // We are the completer.
  std::uint8_t active = edge.active;
  std::uint64_t cycle = edge.cycle;
  if (r_p == cycle + 1) {
    if (cycle % 2 == 0) active = static_cast<std::uint8_t>(1 - active);  // swap on absorb
    ++cycle;
  } else if (r_p != cycle) {
    return delta;  // dropped defensively
  }
  if (cycle % 2 == 1) {
    mirror_delta(static_cast<std::uint8_t>(1 - active));  // transition: passive only
  } else {
    mirror_delta(active);  // steady: both slots
    mirror_delta(static_cast<std::uint8_t>(1 - active));
  }
  return delta;
}

PushCancelFlow::EdgeView PushCancelFlow::edge_state(NodeId j) const {
  const auto slot = neighbors_.slot_of(j);
  PCF_CHECK_MSG(slot.has_value(), "edge_state: node " << j << " is not a neighbor");
  const EdgeState& e = edges_[*slot];
  return EdgeView{e.flow[0], e.flow[1], static_cast<std::uint8_t>(e.active + 1), e.cycle};
}

void PushCancelFlow::save_state(BinaryWriter& w) const {
  PCF_CHECK_MSG(initialized_, "save_state before init");
  neighbors_.save_state(w);
  write_mass(w, initial_);  // mutable via update_data
  for (const EdgeState& e : edges_) {
    write_mass(w, e.flow[0]);
    write_mass(w, e.flow[1]);
    w.u8(e.active);
    w.u64(e.cycle);
    write_mass(w, e.pending_absorbed);
  }
  write_mass(w, phi_);
  w.u64(role_swaps_);
}

void PushCancelFlow::load_state(BinaryReader& r) {
  PCF_CHECK_MSG(initialized_, "load_state before init");
  neighbors_.load_state(r);
  initial_ = read_mass(r);
  for (EdgeState& e : edges_) {
    e.flow[0] = read_mass(r);
    e.flow[1] = read_mass(r);
    e.active = r.u8();
    if (e.active > 1) throw BinioError("pcf checkpoint: active slot out of range");
    e.cycle = r.u64();
    e.pending_absorbed = read_mass(r);
  }
  phi_ = read_mass(r);
  role_swaps_ = r.u64();
}

}  // namespace pcf::core
