// Push-flow (PF) — Fig. 1 of the paper.
//
// A fault-tolerant reformulation of push-sum: instead of transferring mass,
// node i maintains a flow variable f_{i,j} per neighbor j and transfers
// *flows*. A send first folds the pushed mass into f_{i,k} ("virtual send")
// and then transmits the whole flow variable; the receiver overwrites its
// mirror with the exact negation, f_{j,i} = -f_{i,j}. Flow conservation
// (f_{i,j} = -f_{j,i}) is a purely local pairwise property, re-established by
// the next successful delivery — which is why PF self-heals message loss and
// bit flips in flow variables without detecting them.
//
// The node's mass is derived state:  e_i = v_i − Σ_j f_{i,j}.
//
// Weaknesses reproduced here (Section II of the paper):
//  * flows converge to execution-dependent values that grow with n while the
//    aggregate stays O(1) ⇒ cancellation ⇒ accuracy loss at scale;
//  * excluding a failed link zeroes flows of arbitrary magnitude ⇒ the
//    computation effectively restarts.
#pragma once

#include <vector>

#include "core/neighbor_set.hpp"
#include "core/reducer.hpp"

namespace pcf::core {

class PushFlow final : public Reducer {
 public:
  explicit PushFlow(const ReducerConfig& config) : config_(config) {}

  void init(NodeId self, std::span<const NodeId> neighbors, Mass initial) override;
  [[nodiscard]] std::optional<Outgoing> make_message(Rng& rng) override;
  [[nodiscard]] std::optional<Outgoing> make_message_to(NodeId target) override;
  void on_receive(NodeId from, const Packet& packet) override;
  [[nodiscard]] Mass local_mass() const override;
  void on_link_down(NodeId j) override;
  void on_link_up(NodeId j) override;
  void update_data(const Mass& delta) override;
  void save_state(BinaryWriter& w) const override;
  void load_state(BinaryReader& r) override;
  [[nodiscard]] std::string_view name() const noexcept override { return "push-flow"; }
  [[nodiscard]] std::size_t live_degree() const noexcept override {
    return neighbors_.live_count();
  }
  [[nodiscard]] double max_abs_flow_component() const noexcept override;
  bool corrupt_stored_flow(Rng& rng) override;
  [[nodiscard]] std::size_t flows_toward(NodeId j, std::span<Mass> out) const override;
  [[nodiscard]] Mass unreceived_mass(NodeId from, const Packet& packet) const override;

  /// Test hook: the flow variable toward neighbor j (throws if not a neighbor).
  [[nodiscard]] const Mass& flow_to(NodeId j) const;

 private:
  [[nodiscard]] std::optional<Outgoing> send_to_slot(std::size_t slot);
  [[nodiscard]] Mass flow_sum() const;

  ReducerConfig config_;
  NeighborSet neighbors_;
  Mass initial_;
  std::vector<Mass> flows_;  // one per neighbor slot
  Mass cached_flow_sum_;     // used only when config_.pf_cached_flow_sum
  bool initialized_ = false;
};

}  // namespace pcf::core
