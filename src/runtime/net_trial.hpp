// Loopback-UDP trial driver: the socket runtime judged the simulator's way.
//
// A net trial builds the SAME seeded scenario as the pcflow CLI (topology
// from seed ^ 0x7070, node values from seed ^ 0xda7a), runs it over the
// process-per-shard socket runtime (runtime/socket_runtime.hpp) with an
// optional chaos plan, and then closes the loop that makes measured faults
// meaningful:
//
//  1. accuracy — every reporting node's estimate is scored against the exact
//     sim::Oracle reference, exactly like the in-process engines;
//  2. trust reconciliation — the measured fault profile (UDP loss/dup/reorder
//     rates, restarts, stalls) is converted into a sim::FaultPlan and looked
//     up in the differential trust table (sim::algorithm_trusted): a trusted
//     algorithm must land inside the error envelope, an untrusted one is
//     reported but not judged — the fault model is OBSERVED, the verdict
//     comes from the same table the simulator uses;
//  3. warm-session baseline — the same reduction served in-process by a
//     ReductionSession (cold query + warm refresh), the round-cost yardstick
//     the socket deployment is compared against.
//
// The report serializes to the versioned "pcflow-net" JSON schema consumed
// by `pcflow net-trial` / `pcflow serve` and the CI net-smoke job.
#pragma once

#include <string>

#include "runtime/socket_runtime.hpp"
#include "sim/faults.hpp"
#include "support/perf.hpp"

namespace pcf::runtime {

struct NetTrialOptions {
  /// net::Topology::parse() grammar; the node count must satisfy
  /// num_shards <= nodes.
  std::string topology_spec = "torus2d:8x8";
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::Aggregate aggregate = core::Aggregate::kAverage;
  core::ReducerConfig reducer;
  std::uint64_t seed = 1;
  /// Socket-runtime knobs (algorithm/reducer/seed/run_dir are filled in by
  /// the driver; set the rest freely).
  SocketRuntimeConfig runtime;
  ChaosPlan chaos;
  /// Required: directory for checkpoints, result files (and nothing else).
  std::string run_dir;
  /// Error envelope a TRUSTED algorithm must land in. The socket runtime
  /// runs a fixed step budget (no oracle mid-run) under whatever loss the
  /// kernel actually produced, so this is much looser than the simulator's
  /// convergence targets.
  double error_tol = 1e-3;
  /// Also run the in-process warm-session baseline (adds a little CPU).
  bool session_baseline = true;
};

struct NetTrialReport {
  SocketTrialReport trial;
  std::size_t nodes = 0;

  // Accuracy vs. the exact oracle, over reporting nodes only.
  double reference = 0.0;
  double max_rel_error = 0.0;
  double mean_estimate = 0.0;
  std::size_t reporting_nodes = 0;

  // Trust reconciliation.
  sim::FaultPlan measured;  ///< the observed fault profile as a plan
  bool trusted = false;     ///< trust-table verdict for the measured plan
  bool within_envelope = false;  ///< max_rel_error <= tol (always true when untrusted)
  bool ok = false;          ///< completed && within_envelope

  // Warm-session baseline (valid when session_baseline was set).
  bool session_compared = false;
  std::size_t session_cold_rounds = 0;
  std::size_t session_warm_rounds = 0;
  double session_max_error = 0.0;

  /// Process-wide transport totals, aggregated from the per-shard reports
  /// (per-link breakdowns stay in trial.shards[].rx_from).
  PerfCounters perf;
};

/// Runs one loopback socket trial end to end (see file comment).
[[nodiscard]] NetTrialReport run_net_trial(const NetTrialOptions& options);

/// Serializes to the versioned "pcflow-net" JSON schema (version 1).
[[nodiscard]] std::string net_trial_report_to_json(const NetTrialOptions& options,
                                                   const NetTrialReport& report);

}  // namespace pcf::runtime
