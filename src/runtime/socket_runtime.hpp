// Process-per-shard gossip runtime over loopback UDP — the algorithms on a
// real, lossy transport.
//
// Every reducer from src/core runs here unmodified (the same property the
// ThreadedRuntime demonstrates for threads): nodes are sharded round-robin
// over OS processes, same-shard packets are delivered directly, cross-shard
// packets travel as checksummed UDP datagrams (net/transport.hpp). Nothing
// injects faults — loss, duplication and reordering are whatever the kernel
// actually does, MEASURED at the receiver via per-directed-link sequence
// numbers and reported in the trial counters. Backpressure is real too: the
// receive thread pushes into a bounded mailbox (runtime/mailbox.hpp); when
// it blocks, the socket buffer fills and the kernel drops datagrams — the
// overflow shows up as measured loss, not as a growing queue.
//
// Robustness machinery on top of the transport:
//  * heartbeat failure detector — every shard beacons every other shard;
//    a peer silent past the timeout triggers Reducer::on_link_down for all
//    cross-shard edges into it, and a resumed beacon triggers on_link_up —
//    including FALSE positives when a merely-stalled peer revives;
//  * supervision — each shard periodically writes an atomic checkpoint of
//    its reducer states (core/state_io codecs + RNG streams + link sequence
//    tables); the parent supervises with waitpid, and a child that dies by
//    signal (real SIGKILL) is re-forked with a bumped epoch and restores
//    from its last checkpoint. Restart epochs ride in the heartbeat frames
//    so peers can reset their sequence expectations for the reborn shard.
//
// The parent binds ALL shard sockets before forking (ephemeral ports,
// getsockname) and keeps them open, so children learn the full port map by
// inheritance, a restarted child reuses the very same socket (no rebind, no
// port collision), and datagrams sent to a dead shard queue in its kernel
// buffer until the successor drains them — or overflow into measured loss.
//
// Determinism: NONE of this is deterministic — scheduling, kernel drops and
// wall-clock timing are real. The contract is the paper's: converge within
// the algorithm's error envelope under whatever faults were measured, judged
// by reconciling the measured fault profile against the differential trust
// table (sim::algorithm_trusted), never by byte-identical output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "runtime/udp.hpp"

namespace pcf::runtime {

struct SocketRuntimeConfig {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::ReducerConfig reducer;
  std::uint64_t seed = 1;
  /// Shard processes; nodes are assigned round-robin (node % num_shards).
  std::size_t num_shards = 4;
  /// Gossip sends per node (the ThreadedRuntime's steps_per_node contract).
  std::size_t steps_per_node = 600;
  /// Sleep between gossip steps; 0 runs flat out (maximum backpressure).
  int step_pacing_us = 0;
  /// Bounded RX mailbox per shard; 0 = unbounded (disables backpressure).
  std::size_t mailbox_capacity = 256;
  /// Requested SO_RCVBUF. Small values turn slow consumption into kernel
  /// drops — i.e. into measured UDP loss. 0 keeps the system default.
  int socket_recv_buffer = 4096;
  /// EADDRINUSE retries when binding (busy CI runners).
  int bind_attempts = 5;
  int heartbeat_period_ms = 10;
  /// A peer silent this long is reported down to the reducers.
  int heartbeat_timeout_ms = 100;
  /// Checkpoint cadence in gossip steps; 0 disables checkpoints (a killed
  /// shard then restarts from its initial state).
  std::size_t checkpoint_every_steps = 50;
  /// Receive-only tail after the step budget: the shard keeps draining,
  /// heartbeating and answering detectors so late peers (e.g. a restarted
  /// shard catching up) still converge against it.
  int linger_ms = 300;
  /// Supervisor gives up restarting a shard after this many signal deaths.
  std::size_t max_restarts = 3;
  /// Hard wall-clock cap on the whole trial; on expiry the supervisor kills
  /// the remaining children and reports the run incomplete.
  int trial_timeout_ms = 120000;
  /// Directory for checkpoints and per-shard result files. Required.
  std::string run_dir;
};

/// Faults the SUPERVISOR injects into the process tree (the one place where
/// injection is honest: a SIGKILL is a real process death, a SIGSTOP a real
/// stall — what they do to the computation is still only measured).
struct ChaosPlan {
  int kill_shard = -1;  ///< SIGKILL this shard once (-1 = never)…
  int kill_after_ms = 0;  ///< …this long after launch
  int stall_shard = -1;  ///< SIGSTOP this shard once (-1 = never)…
  int stall_after_ms = 0;  ///< …this long after launch…
  int stall_ms = 0;  ///< …and SIGCONT it after this long (detector false positive)
};

/// Datagram bookkeeping from one shard's perspective (its own RX path).
struct LinkCounters {
  std::uint64_t received = 0;    ///< data frames accepted (fresh sequence)
  std::uint64_t lost = 0;        ///< sequence gaps — datagrams the kernel dropped
  std::uint64_t duplicated = 0;  ///< repeated sequence numbers dropped
  std::uint64_t reordered = 0;   ///< stale sequence numbers dropped
};

struct ShardReport {
  std::uint32_t shard = 0;
  std::uint32_t epoch = 0;  ///< 0 = never restarted
  std::uint64_t steps_completed = 0;
  /// Step the final incarnation restored from (0 = started fresh).
  std::uint64_t restored_from_step = 0;
  bool produced = false;  ///< result file present and parseable

  std::uint64_t datagrams_sent = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t detector_downs = 0;
  std::uint64_t detector_ups = 0;
  /// Backpressure split (Mailbox::Stats): the RX thread uses blocking push(),
  /// so stalls show up as blocked_pushes; rejected_pushes counts failed
  /// try_push() and stays 0 under the current RX path — reported anyway so the
  /// schema does not change if a fail-fast producer is ever added.
  std::uint64_t mailbox_blocked_pushes = 0;
  std::uint64_t mailbox_rejected_pushes = 0;
  std::uint64_t mailbox_high_watermark = 0;
  /// RX accounting per sending peer shard (index = peer shard id; the entry
  /// at this shard's own index stays zero).
  std::vector<LinkCounters> rx_from;

  std::vector<net::NodeId> nodes;
  std::vector<double> estimates;     ///< aligned with `nodes`
  std::vector<core::Mass> masses;    ///< aligned with `nodes`

  [[nodiscard]] LinkCounters rx_total() const noexcept;
};

struct SocketTrialReport {
  std::vector<ShardReport> shards;  ///< indexed by shard id
  std::size_t restarts = 0;         ///< signal deaths the supervisor recovered
  std::size_t failures = 0;         ///< shards lost for good (exit!=0, budget)
  bool completed = false;           ///< every shard produced a result

  [[nodiscard]] LinkCounters rx_total() const noexcept;
  [[nodiscard]] std::uint64_t datagrams_sent() const noexcept;
  /// Measured loss fraction: gaps / (gaps + accepted receives).
  [[nodiscard]] double measured_loss_rate() const noexcept;
  [[nodiscard]] double measured_duplicate_rate() const noexcept;
  [[nodiscard]] double measured_reorder_rate() const noexcept;
  /// Final estimate per node (NaN for nodes of shards that never reported).
  [[nodiscard]] std::vector<double> estimates_by_node(std::size_t num_nodes) const;
};

class SocketRuntime {
 public:
  /// The runtime copies topology and masses: children read them from the
  /// forked image, so they must outlive every fork.
  SocketRuntime(net::Topology topology, std::span<const core::Mass> initial,
                SocketRuntimeConfig config);

  /// Launches the process tree, supervises it to completion (restarting
  /// signal-killed shards from their checkpoints) and aggregates the
  /// per-shard results. Runs the whole configured trial; may be called once.
  [[nodiscard]] SocketTrialReport run(const ChaosPlan& chaos = {});

  [[nodiscard]] std::size_t shard_of(net::NodeId node) const noexcept {
    return node % config_.num_shards;
  }
  [[nodiscard]] const SocketRuntimeConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] int child_main(std::uint32_t shard, std::uint32_t epoch);

  net::Topology topology_;
  SocketRuntimeConfig config_;
  std::vector<core::Mass> initial_;
  std::vector<UdpSocket> sockets_;      ///< parent-bound, inherited by children
  std::vector<std::uint16_t> ports_;    ///< shard -> UDP port
  bool ran_ = false;
};

}  // namespace pcf::runtime
