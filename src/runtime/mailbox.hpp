// Thread-safe mailbox used by the threaded and socket runtimes.
//
// Each node owns one mailbox; any thread may push (deliver a packet), only
// the owning worker drains. Draining swaps the queue out under the lock so
// message processing happens outside the critical section.
//
// Capacity and backpressure: a mailbox constructed with capacity 0 is
// unbounded (the original behavior). A bounded mailbox admits at most
// `capacity` envelopes; the two producer entry points differ in what happens
// at the limit:
//  * push()      blocks until space frees up (or shutdown()) — the
//                producer/consumer shape of the socket receive thread, where
//                blocking the reader is the backpressure signal that lets the
//                kernel socket buffer fill and overflow into *measured* UDP
//                loss;
//  * try_push()  fails fast — the shape for callers that can make progress
//                themselves (the threaded runtime's workers drain their own
//                shard between attempts; a blocking push there could deadlock
//                against the step barrier).
// The two are different backpressure signals and count separately into Stats:
// blocked_pushes is the number of push() calls that found the box full and
// waited (once per call, however long the wait), rejected_pushes the number of
// try_push() calls that failed on a full box, high_watermark the largest
// queue size ever admitted.
//
// Lock discipline is compiler-checked (DESIGN.md §11): mutex_ guards queue_,
// stats_, and shutdown_; the clang thread-safety preset turns any unlocked
// access into a build error.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <vector>

#include "core/reducer.hpp"
#include "support/annotations.hpp"

namespace pcf::runtime {

struct Envelope {
  net::NodeId from;
  core::Packet packet;
};

class Mailbox {
 public:
  /// Monotone producer-side telemetry (see class comment).
  struct Stats {
    std::uint64_t blocked_pushes = 0;   ///< push() calls that found the box full and waited
    std::uint64_t rejected_pushes = 0;  ///< try_push() calls that failed on a full box
    std::uint64_t high_watermark = 0;   ///< max queue length ever admitted
  };

  /// capacity 0 = unbounded (never blocks, never rejects).
  explicit Mailbox(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocking push: waits while the box is full. Returns false (and drops the
  /// envelope) only after shutdown() — the shutdown-aware wakeup that lets a
  /// producer thread exit instead of blocking forever on a full box nobody
  /// will drain again. A push that found the box full (and was not already
  /// shut down) counts once into blocked_pushes.
  bool push(Envelope envelope) {
    MutexLock lock(mutex_);
    if (full_locked() && !shutdown_) ++stats_.blocked_pushes;
    while (full_locked() && !shutdown_) space_.wait(lock.native());
    if (shutdown_) return false;
    admit_locked(std::move(envelope));
    return true;
  }

  /// Non-blocking push: false when the box is full or shut down. The caller
  /// owns making progress (e.g. draining its own mailboxes) before retrying.
  /// A full box counts into rejected_pushes; rejection-after-shutdown does not.
  bool try_push(Envelope envelope) {
    MutexLock lock(mutex_);
    if (shutdown_) return false;
    if (full_locked()) {
      ++stats_.rejected_pushes;
      return false;
    }
    admit_locked(std::move(envelope));
    return true;
  }

  /// Removes and returns all queued envelopes (FIFO order preserved), waking
  /// any producers blocked on a full box.
  [[nodiscard]] std::vector<Envelope> drain() {
    std::vector<Envelope> out;
    {
      MutexLock lock(mutex_);
      out.swap(queue_);
    }
    space_.notify_all();
    return out;
  }

  /// Wakes every blocked producer; subsequent pushes are rejected. Drain
  /// still returns whatever was admitted before the shutdown.
  void shutdown() {
    {
      MutexLock lock(mutex_);
      shutdown_ = true;
    }
    space_.notify_all();
  }

  [[nodiscard]] bool empty() const {
    MutexLock lock(mutex_);
    return queue_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] Stats stats() const {
    MutexLock lock(mutex_);
    return stats_;
  }

 private:
  [[nodiscard]] bool full_locked() const noexcept PCF_REQUIRES(mutex_) {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  void admit_locked(Envelope&& envelope) PCF_REQUIRES(mutex_) {
    queue_.push_back(std::move(envelope));
    if (queue_.size() > stats_.high_watermark) stats_.high_watermark = queue_.size();
  }

  const std::size_t capacity_;
  std::condition_variable space_;
  mutable Mutex mutex_;
  std::vector<Envelope> queue_ PCF_GUARDED_BY(mutex_);
  Stats stats_ PCF_GUARDED_BY(mutex_);
  bool shutdown_ PCF_GUARDED_BY(mutex_) = false;
};

}  // namespace pcf::runtime
