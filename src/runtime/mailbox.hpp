// Thread-safe mailbox used by the threaded and socket runtimes.
//
// Each node owns one mailbox; any thread may push (deliver a packet), only
// the owning worker drains. Draining swaps the queue out under the lock so
// message processing happens outside the critical section.
//
// Capacity and backpressure: a mailbox constructed with capacity 0 is
// unbounded (the original behavior). A bounded mailbox admits at most
// `capacity` envelopes; the two producer entry points differ in what happens
// at the limit:
//  * push()      blocks until space frees up (or shutdown()) — the
//                producer/consumer shape of the socket receive thread, where
//                blocking the reader is the backpressure signal that lets the
//                kernel socket buffer fill and overflow into *measured* UDP
//                loss;
//  * try_push()  fails fast — the shape for callers that can make progress
//                themselves (the threaded runtime's workers drain their own
//                shard between attempts; a blocking push there could deadlock
//                against the step barrier).
// Both count into Stats: overflow_blocks is the number of pushes that found
// the box full (each blocked push() counts once, as does each failed
// try_push()), high_watermark the largest queue size ever admitted.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/reducer.hpp"

namespace pcf::runtime {

struct Envelope {
  net::NodeId from;
  core::Packet packet;
};

class Mailbox {
 public:
  /// Monotone producer-side telemetry (see class comment).
  struct Stats {
    std::uint64_t overflow_blocks = 0;  ///< pushes that found the box full
    std::uint64_t high_watermark = 0;   ///< max queue length ever admitted
  };

  /// capacity 0 = unbounded (never blocks, never rejects).
  explicit Mailbox(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocking push: waits while the box is full. Returns false (and drops the
  /// envelope) only after shutdown() — the shutdown-aware wakeup that lets a
  /// producer thread exit instead of blocking forever on a full box nobody
  /// will drain again.
  bool push(Envelope envelope) {
    std::unique_lock lock(mutex_);
    if (full_locked()) {
      ++stats_.overflow_blocks;
      space_.wait(lock, [this] { return !full_locked() || shutdown_; });
    }
    if (shutdown_) return false;
    admit_locked(std::move(envelope));
    return true;
  }

  /// Non-blocking push: false when the box is full or shut down. The caller
  /// owns making progress (e.g. draining its own mailboxes) before retrying.
  bool try_push(Envelope envelope) {
    const std::scoped_lock lock(mutex_);
    if (shutdown_) return false;
    if (full_locked()) {
      ++stats_.overflow_blocks;
      return false;
    }
    admit_locked(std::move(envelope));
    return true;
  }

  /// Removes and returns all queued envelopes (FIFO order preserved), waking
  /// any producers blocked on a full box.
  [[nodiscard]] std::vector<Envelope> drain() {
    std::vector<Envelope> out;
    {
      const std::scoped_lock lock(mutex_);
      out.swap(queue_);
    }
    space_.notify_all();
    return out;
  }

  /// Wakes every blocked producer; subsequent pushes are rejected. Drain
  /// still returns whatever was admitted before the shutdown.
  void shutdown() {
    {
      const std::scoped_lock lock(mutex_);
      shutdown_ = true;
    }
    space_.notify_all();
  }

  [[nodiscard]] bool empty() const {
    const std::scoped_lock lock(mutex_);
    return queue_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  [[nodiscard]] Stats stats() const {
    const std::scoped_lock lock(mutex_);
    return stats_;
  }

 private:
  [[nodiscard]] bool full_locked() const noexcept {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  void admit_locked(Envelope&& envelope) {
    queue_.push_back(std::move(envelope));
    if (queue_.size() > stats_.high_watermark) stats_.high_watermark = queue_.size();
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable space_;
  std::vector<Envelope> queue_;
  Stats stats_;
  bool shutdown_ = false;
};

}  // namespace pcf::runtime
