// Thread-safe mailbox used by the threaded runtime.
//
// Each node owns one mailbox; any thread may push (deliver a packet), only
// the owning worker drains. Draining swaps the queue out under the lock so
// message processing happens outside the critical section.
#pragma once

#include <mutex>
#include <vector>

#include "core/reducer.hpp"

namespace pcf::runtime {

struct Envelope {
  net::NodeId from;
  core::Packet packet;
};

class Mailbox {
 public:
  void push(Envelope envelope) {
    const std::scoped_lock lock(mutex_);
    queue_.push_back(std::move(envelope));
  }

  /// Removes and returns all queued envelopes (FIFO order preserved).
  [[nodiscard]] std::vector<Envelope> drain() {
    std::vector<Envelope> out;
    {
      const std::scoped_lock lock(mutex_);
      out.swap(queue_);
    }
    return out;
  }

  [[nodiscard]] bool empty() const {
    const std::scoped_lock lock(mutex_);
    return queue_.empty();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<Envelope> queue_;
};

}  // namespace pcf::runtime
