#include "runtime/net_trial.hpp"

#include <algorithm>
#include <cmath>

#include "net/topology.hpp"
#include "sim/differential.hpp"
#include "sim/metrics.hpp"
#include "sim/reduce.hpp"
#include "sim/session.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"

namespace pcf::runtime {

namespace {

/// Folds the observed fault profile into a sim::FaultPlan so the verdict can
/// come from the SAME trust table the differential harness uses. Mapping:
///  * datagram loss/duplication/reordering rates map onto the probabilistic
///    knobs directly;
///  * any detector down that later cleared (a restarted or stalled shard
///    reviving) is a false positive from the reducers' point of view — the
///    peer was never permanently gone — so it maps onto false_detects, the
///    category that legitimately un-trusts PCF's cancellation handshakes;
///  * a shard lost for good (restart budget burned, nonzero exit) maps onto
///    node_crashes.
/// The table only inspects emptiness of the event lists, so one
/// representative event per observed category suffices.
[[nodiscard]] sim::FaultPlan reconcile_measured_plan(const SocketTrialReport& trial,
                                                     double loss_rate, double dup_rate,
                                                     double reorder_rate) {
  sim::FaultPlan plan;
  plan.message_loss_prob = loss_rate;
  plan.duplicate_prob = dup_rate;
  plan.reorder_prob = reorder_rate;
  std::uint64_t downs = 0;
  std::uint64_t ups = 0;
  for (const ShardReport& s : trial.shards) {
    downs += s.detector_downs;
    ups += s.detector_ups;
  }
  if (ups > 0) {
    plan.false_detects.push_back({.time = 0.0, .a = 0, .b = 0, .clear_delay = 1.0});
  }
  if (trial.failures > 0 || downs > ups) {
    plan.node_crashes.push_back({.time = 0.0, .node = 0});
  }
  return plan;
}

void aggregate_perf(const SocketTrialReport& trial, PerfCounters& perf) {
  for (const ShardReport& s : trial.shards) {
    const LinkCounters rx = s.rx_total();
    perf.datagrams_sent += s.datagrams_sent;
    perf.datagrams_received += rx.received;
    perf.datagrams_lost += rx.lost;
    perf.datagrams_duplicated += rx.duplicated;
    perf.datagrams_reordered += rx.reordered;
    perf.frames_rejected += s.frames_rejected;
    perf.heartbeats_sent += s.heartbeats_sent;
    perf.detector_downs += s.detector_downs;
    perf.detector_ups += s.detector_ups;
    perf.mailbox_blocked_pushes += s.mailbox_blocked_pushes;
    perf.mailbox_rejected_pushes += s.mailbox_rejected_pushes;
    perf.mailbox_high_watermark =
        std::max(perf.mailbox_high_watermark, s.mailbox_high_watermark);
  }
}

}  // namespace

NetTrialReport run_net_trial(const NetTrialOptions& options) {
  PCF_CHECK_MSG(!options.run_dir.empty(), "net trial needs a run_dir");

  // Same seed derivation as the pcflow CLI: a net trial and a simulator run
  // with equal seeds reduce the identical scenario.
  Rng topo_rng(options.seed ^ 0x7070ULL);
  net::Topology topology = net::Topology::parse(options.topology_spec, topo_rng);
  Rng data_rng(options.seed ^ 0xda7aULL);
  std::vector<double> values(topology.size());
  for (auto& v : values) v = data_rng.uniform();
  const std::vector<core::Mass> masses = sim::masses_from_values(values, options.aggregate);

  SocketRuntimeConfig config = options.runtime;
  config.algorithm = options.algorithm;
  config.reducer = options.reducer;
  config.seed = options.seed;
  config.run_dir = options.run_dir;

  NetTrialReport report;
  report.nodes = topology.size();
  {
    SocketRuntime runtime(topology, masses, config);
    report.trial = runtime.run(options.chaos);
  }

  const sim::Oracle oracle(masses);
  report.reference = oracle.target(0);
  const std::vector<double> estimates = report.trial.estimates_by_node(topology.size());
  double mean = 0.0;
  for (const double e : estimates) {
    if (std::isnan(e)) continue;
    ++report.reporting_nodes;
    mean += e;
    report.max_rel_error = std::max(report.max_rel_error, oracle.error_of(e));
  }
  report.mean_estimate = report.reporting_nodes > 0
                             ? mean / static_cast<double>(report.reporting_nodes)
                             : std::numeric_limits<double>::quiet_NaN();

  report.measured = reconcile_measured_plan(report.trial, report.trial.measured_loss_rate(),
                                            report.trial.measured_duplicate_rate(),
                                            report.trial.measured_reorder_rate());
  report.trusted = sim::algorithm_trusted(options.algorithm, report.measured);
  report.within_envelope = !report.trusted || report.max_rel_error <= options.error_tol;
  report.ok = report.trial.completed && report.within_envelope;
  aggregate_perf(report.trial, report.perf);

  if (options.session_baseline) {
    // The same reduction served warm in process: cold query cost, then a
    // warm refresh — the round-cost yardstick for the socket deployment.
    sim::SessionOptions session_options;
    session_options.algorithm = options.algorithm;
    session_options.aggregate = options.aggregate;
    session_options.reducer = options.reducer;
    session_options.seed = options.seed;
    session_options.target_accuracy = options.error_tol;
    std::vector<core::Values> inputs(topology.size());
    for (std::size_t i = 0; i < values.size(); ++i) inputs[i].push_back(values[i]);
    sim::ReductionSession session(topology, inputs, session_options);
    const sim::SessionQueryResult cold = session.query(inputs);
    const sim::SessionQueryResult warm = session.refresh();
    report.session_compared = true;
    report.session_cold_rounds = cold.rounds;
    report.session_warm_rounds = warm.rounds;
    report.session_max_error = cold.max_error;
  }
  return report;
}

std::string net_trial_report_to_json(const NetTrialOptions& options,
                                     const NetTrialReport& report) {
  JsonWriter json;
  json.begin_object();
  json.field("schema", "pcflow-net");
  json.field("schema_version", std::int64_t{1});
  // minor 1: mailbox_overflow_blocks split into mailbox_blocked_pushes +
  // mailbox_rejected_pushes (measured + per-shard objects). Additive readers
  // keyed on schema_version keep working; the overflow key is gone.
  json.field("schema_minor", std::int64_t{1});
  json.field("algorithm", core::to_string(options.algorithm));
  json.field("topology", options.topology_spec);
  json.field("aggregate", options.aggregate == core::Aggregate::kSum ? "sum" : "avg");
  json.field("seed", options.seed);
  json.field("nodes", static_cast<std::uint64_t>(report.nodes));
  // "num_shards", not "shards": the per-shard report array below owns that
  // key, and JSON parsers keep only the last duplicate.
  json.field("num_shards", static_cast<std::uint64_t>(options.runtime.num_shards));
  json.field("steps_per_node", static_cast<std::uint64_t>(options.runtime.steps_per_node));
  json.field("mailbox_capacity", static_cast<std::uint64_t>(options.runtime.mailbox_capacity));
  json.field("socket_recv_buffer", std::int64_t{options.runtime.socket_recv_buffer});
  json.field("heartbeat_period_ms", std::int64_t{options.runtime.heartbeat_period_ms});
  json.field("heartbeat_timeout_ms", std::int64_t{options.runtime.heartbeat_timeout_ms});
  json.field("checkpoint_every_steps",
             static_cast<std::uint64_t>(options.runtime.checkpoint_every_steps));

  json.key("chaos");
  json.begin_object();
  json.field("kill_shard", std::int64_t{options.chaos.kill_shard});
  json.field("kill_after_ms", std::int64_t{options.chaos.kill_after_ms});
  json.field("stall_shard", std::int64_t{options.chaos.stall_shard});
  json.field("stall_after_ms", std::int64_t{options.chaos.stall_after_ms});
  json.field("stall_ms", std::int64_t{options.chaos.stall_ms});
  json.end_object();

  const LinkCounters rx = report.trial.rx_total();
  json.key("measured");
  json.begin_object();
  json.field("datagrams_sent", report.trial.datagrams_sent());
  json.field("datagrams_received", rx.received);
  json.field("datagrams_lost", rx.lost);
  json.field("datagrams_duplicated", rx.duplicated);
  json.field("datagrams_reordered", rx.reordered);
  json.field("loss_rate", report.trial.measured_loss_rate());
  json.field("duplicate_rate", report.trial.measured_duplicate_rate());
  json.field("reorder_rate", report.trial.measured_reorder_rate());
  json.field("frames_rejected", report.perf.frames_rejected);
  json.field("heartbeats_sent", report.perf.heartbeats_sent);
  json.field("detector_downs", report.perf.detector_downs);
  json.field("detector_ups", report.perf.detector_ups);
  json.field("mailbox_blocked_pushes", report.perf.mailbox_blocked_pushes);
  json.field("mailbox_rejected_pushes", report.perf.mailbox_rejected_pushes);
  json.field("mailbox_high_watermark", report.perf.mailbox_high_watermark);
  json.end_object();

  json.key("supervision");
  json.begin_object();
  json.field("restarts", static_cast<std::uint64_t>(report.trial.restarts));
  json.field("failures", static_cast<std::uint64_t>(report.trial.failures));
  json.field("completed", report.trial.completed);
  std::uint64_t max_epoch = 0;
  for (const ShardReport& s : report.trial.shards) {
    max_epoch = std::max(max_epoch, static_cast<std::uint64_t>(s.epoch));
  }
  json.field("max_epoch", max_epoch);
  json.end_object();

  json.key("accuracy");
  json.begin_object();
  json.field("reference", report.reference);
  json.field("max_rel_error", report.max_rel_error);
  json.field("mean_estimate", report.mean_estimate);
  json.field("reporting_nodes", static_cast<std::uint64_t>(report.reporting_nodes));
  json.field("total_nodes", static_cast<std::uint64_t>(report.nodes));
  json.end_object();

  json.key("trust");
  json.begin_object();
  json.field("trusted", report.trusted);
  json.field("within_envelope", report.within_envelope);
  json.field("error_tol", options.error_tol);
  json.field("ok", report.ok);
  json.end_object();

  json.key("session_baseline");
  if (report.session_compared) {
    json.begin_object();
    json.field("cold_rounds", static_cast<std::uint64_t>(report.session_cold_rounds));
    json.field("warm_rounds", static_cast<std::uint64_t>(report.session_warm_rounds));
    json.field("max_error", report.session_max_error);
    json.end_object();
  } else {
    json.null();
  }

  json.key("shards");
  json.begin_array();
  for (const ShardReport& s : report.trial.shards) {
    json.begin_object();
    json.field("shard", static_cast<std::uint64_t>(s.shard));
    json.field("epoch", static_cast<std::uint64_t>(s.epoch));
    json.field("produced", s.produced);
    json.field("restored_from_step", s.restored_from_step);
    json.field("datagrams_sent", s.datagrams_sent);
    json.field("detector_downs", s.detector_downs);
    json.field("detector_ups", s.detector_ups);
    json.field("mailbox_blocked_pushes", s.mailbox_blocked_pushes);
    json.field("mailbox_rejected_pushes", s.mailbox_rejected_pushes);
    json.field("mailbox_high_watermark", s.mailbox_high_watermark);
    json.key("rx_from");
    json.begin_array();
    for (const LinkCounters& link : s.rx_from) {
      json.begin_object();
      json.field("received", link.received);
      json.field("lost", link.lost);
      json.field("duplicated", link.duplicated);
      json.field("reordered", link.reordered);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace pcf::runtime
