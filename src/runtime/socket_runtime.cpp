#include "runtime/socket_runtime.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "core/state_io.hpp"
#include "net/transport.hpp"
#include "runtime/mailbox.hpp"
#include "support/annotations.hpp"
#include "support/binio.hpp"
#include "support/check.hpp"

namespace pcf::runtime {

namespace {

// 8-byte file magics + shared version for the runtime's sidecar files
// (per-shard checkpoint and result blobs). Versioned like the engine
// checkpoints: a reader refuses files from another build generation.
constexpr std::string_view kCkptMagic = "PCFNETCK";
constexpr std::string_view kResultMagic = "PCFNETRS";
// v2: result blob reports blocked and rejected mailbox pushes separately
// (one extra u64) instead of a single conflated overflow counter.
constexpr std::uint32_t kNetFileVersion = 2;

[[nodiscard]] std::int64_t now_ms() noexcept {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Seals `w` with an FNV trailer and writes it via tmp-file + rename, so a
/// reader never observes a half-written blob (the supervisor may SIGKILL the
/// writer at any instant — that is the point of the exercise).
void write_file_atomic(const std::string& path, BinaryWriter&& w) {
  w.u64(fnv1a(w.buffer().substr(0, w.size())));
  const std::string body = std::move(w).take();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) return;  // best effort: a failed checkpoint is a skipped one
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    if (!out.good()) return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
}

/// Reads a sealed blob; empty string when missing, truncated or corrupted.
[[nodiscard]] std::string read_file_checked(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return {};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string body = buffer.str();
  if (body.size() < 8) return {};
  BinaryReader trailer(std::string_view(body).substr(body.size() - 8));
  if (trailer.u64() != fnv1a(std::string_view(body).substr(0, body.size() - 8))) return {};
  body.resize(body.size() - 8);
  return body;
}

[[nodiscard]] std::string ckpt_path(const std::string& dir, std::uint32_t shard) {
  return dir + "/ckpt_shard" + std::to_string(shard) + ".bin";
}

[[nodiscard]] std::string result_path(const std::string& dir, std::uint32_t shard) {
  return dir + "/result_shard" + std::to_string(shard) + ".bin";
}

using LinkKey = std::pair<net::NodeId, net::NodeId>;  // directed (from, to)

/// One shard incarnation: the child-process side of the runtime. Constructed
/// after fork() from the inherited parent image (topology, masses, ports and
/// the shard's own bound socket all arrive by inheritance — nothing is
/// re-serialized across the fork).
class ShardProcess {
 public:
  ShardProcess(const net::Topology& topology, const SocketRuntimeConfig& config,
               std::span<const core::Mass> initial, std::span<const std::uint16_t> ports,
               const UdpSocket& socket, std::uint32_t shard, std::uint32_t epoch)
      : topology_(topology),
        config_(config),
        ports_(ports),
        socket_(socket),
        shard_(shard),
        epoch_(epoch),
        num_shards_(static_cast<std::uint32_t>(config.num_shards)),
        shard_down_(config.num_shards, false),
        last_heard_(config.num_shards),
        peer_epoch_(config.num_shards, 0),
        rx_from_(config.num_shards) {
    const Rng base(config_.seed);
    for (net::NodeId i = shard_; i < topology_.size(); i += num_shards_) {
      local_nodes_.push_back(i);
      reducers_.push_back(core::make_reducer(config_.algorithm, config_.reducer));
      reducers_.back()->init(i, topology_.neighbors(i), initial[i]);
      rngs_.push_back(base.fork(i));
      mailboxes_.push_back(std::make_unique<Mailbox>(config_.mailbox_capacity));
    }
  }

  int run() {
    std::uint64_t start_step = 0;
    if (epoch_ > 0 && config_.checkpoint_every_steps > 0) {
      start_step = try_restore();
    }
    const std::int64_t started = now_ms();
    for (auto& heard : last_heard_) heard.store(started, std::memory_order_relaxed);

    std::thread rx([this] { rx_loop(); });

    std::int64_t next_heartbeat = started;
    for (std::uint64_t step = start_step; step < config_.steps_per_node; ++step) {
      for (std::size_t k = 0; k < local_nodes_.size(); ++k) drain_into(k);
      for (std::size_t k = 0; k < local_nodes_.size(); ++k) {
        auto out = reducers_[k]->make_message(rngs_[k]);
        if (!out) continue;
        send_packet(local_nodes_[k], out->to, out->packet);
      }
      next_heartbeat = heartbeat_and_detect(next_heartbeat);
      if (config_.checkpoint_every_steps > 0 &&
          (step + 1) % config_.checkpoint_every_steps == 0) {
        write_checkpoint(step + 1);
      }
      if (config_.step_pacing_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(config_.step_pacing_us));
      }
    }
    if (config_.checkpoint_every_steps > 0) write_checkpoint(config_.steps_per_node);

    // Receive-only linger: keep folding in late traffic and beaconing so
    // slower peers (a restarted shard redoing steps) still have a live
    // counterparty. The detector sweep stops here deliberately: this shard's
    // computation is frozen, and excluding a peer that merely finished its
    // own linger and exited would fold flows into the final answer for no
    // benefit — exclusion only exists to serve an ONGOING computation.
    const std::int64_t linger_end = now_ms() + config_.linger_ms;
    while (now_ms() < linger_end) {
      for (std::size_t k = 0; k < local_nodes_.size(); ++k) drain_into(k);
      next_heartbeat = heartbeat_and_detect(next_heartbeat, /*sweep_detector=*/false);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    stop_.store(true, std::memory_order_release);
    for (auto& box : mailboxes_) box->shutdown();
    rx.join();
    for (std::size_t k = 0; k < local_nodes_.size(); ++k) drain_into(k);

    write_result(start_step);
    return 0;
  }

 private:
  [[nodiscard]] std::size_t local_index(net::NodeId node) const noexcept {
    return node / num_shards_;
  }

  void drain_into(std::size_t k) {
    for (auto& env : mailboxes_[k]->drain()) {
      reducers_[k]->on_receive(env.from, env.packet);
    }
  }

  void send_packet(net::NodeId from, net::NodeId to, const core::Packet& packet) {
    const auto dest_shard = static_cast<std::uint32_t>(to % num_shards_);
    if (dest_shard == shard_) {
      // Same-process link: direct delivery (trivially FIFO, never lossy).
      reducers_[local_index(to)]->on_receive(from, packet);
      return;
    }
    net::DataFrame frame;
    frame.from = from;
    frame.to = to;
    frame.seq = ++tx_seq_[{from, to}];
    frame.packet = packet;
    socket_.send_to(ports_[dest_shard], net::encode_frame(frame));
    ++sent_;  // counted sent even if the kernel refused: the receiver's gap
              // accounting is the single source of truth for loss
  }

  /// Sends due heartbeats and (while the computation is live) sweeps the
  /// failure detector; returns the next heartbeat deadline.
  std::int64_t heartbeat_and_detect(std::int64_t next_heartbeat, bool sweep_detector = true) {
    const std::int64_t now = now_ms();
    if (now >= next_heartbeat) {
      net::HeartbeatFrame beacon;
      beacon.shard = shard_;
      beacon.epoch = epoch_;
      beacon.seq = ++heartbeat_seq_;
      const std::string bytes = net::encode_frame(beacon);
      for (std::uint32_t p = 0; p < num_shards_; ++p) {
        if (p == shard_) continue;
        socket_.send_to(ports_[p], bytes);
        ++heartbeats_sent_;
      }
      next_heartbeat = now + config_.heartbeat_period_ms;
    }
    if (!sweep_detector) return next_heartbeat;

    for (std::uint32_t p = 0; p < num_shards_; ++p) {
      if (p == shard_) continue;
      const std::int64_t age = now - last_heard_[p].load(std::memory_order_relaxed);
      if (!shard_down_[p] && age > config_.heartbeat_timeout_ms) {
        shard_down_[p] = true;
        ++detector_downs_;
        notify_links(p, /*up=*/false);
      } else if (shard_down_[p] && age <= config_.heartbeat_timeout_ms) {
        shard_down_[p] = false;
        ++detector_ups_;
        notify_links(p, /*up=*/true);
      }
    }
    return next_heartbeat;
  }

  /// Reports every cross-shard edge into peer shard `p` down or up.
  void notify_links(std::uint32_t p, bool up) {
    for (std::size_t k = 0; k < local_nodes_.size(); ++k) {
      for (const net::NodeId j : topology_.neighbors(local_nodes_[k])) {
        if (j % num_shards_ != p) continue;
        if (up) {
          reducers_[k]->on_link_up(j);
        } else {
          reducers_[k]->on_link_down(j);
        }
      }
    }
  }

  // ---- receive thread ---------------------------------------------------

  void rx_loop() {
    while (!stop_.load(std::memory_order_acquire)) {
      auto datagram = socket_.receive(20);
      if (!datagram) continue;
      net::Frame frame;
      try {
        frame = net::decode_frame(*datagram);
      } catch (const net::TransportError&) {
        ++rejected_;
        continue;
      }
      if (frame.kind == net::FrameKind::kHeartbeat) {
        on_heartbeat(frame.heartbeat);
      } else {
        on_data(frame.data);
      }
    }
  }

  void on_heartbeat(const net::HeartbeatFrame& beacon) {
    if (beacon.shard >= num_shards_ || beacon.shard == shard_) {
      ++rejected_;  // stray or self-addressed beacon
      return;
    }
    {
      MutexLock lock(rx_mutex_);
      auto& known_epoch = peer_epoch_[beacon.shard];
      if (beacon.epoch < known_epoch) return;  // pre-restart straggler
      if (beacon.epoch > known_epoch) {
        // The peer was reborn from a checkpoint: its sequence counters
        // rewound, so expectations for its links must reset — the first
        // frame of the new life is accepted without gap accounting.
        known_epoch = beacon.epoch;
        for (auto it = rx_seq_.begin(); it != rx_seq_.end();) {
          if (it->first.first % num_shards_ == beacon.shard) {
            it = rx_seq_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    last_heard_[beacon.shard].store(now_ms(), std::memory_order_relaxed);
  }

  void on_data(const net::DataFrame& frame) {
    if (frame.from >= topology_.size() || frame.to >= topology_.size() ||
        frame.to % num_shards_ != shard_ || !topology_.has_edge(frame.from, frame.to)) {
      ++rejected_;  // stray datagram from a stale run on a reused port
      return;
    }
    const auto from_shard = static_cast<std::uint32_t>(frame.from % num_shards_);
    last_heard_[from_shard].store(now_ms(), std::memory_order_relaxed);

    {
      MutexLock lock(rx_mutex_);
      LinkCounters& link = rx_from_[from_shard];
      const auto [it, fresh_link] = rx_seq_.try_emplace(LinkKey{frame.from, frame.to}, 0);
      if (!fresh_link) {
        if (frame.seq == it->second) {
          ++link.duplicated;
          return;
        }
        if (frame.seq < it->second) {
          ++link.reordered;
          return;
        }
        link.lost += frame.seq - it->second - 1;  // the measured quantity
      }
      it->second = frame.seq;
      ++link.received;
    }

    // Blocking push: when the owner lags, the RX thread stalls here, the
    // kernel buffer fills and further datagrams become measured loss.
    (void)mailboxes_[local_index(frame.to)]->push({frame.from, frame.packet});
  }

  // ---- checkpoint / restore / result ------------------------------------

  void write_checkpoint(std::uint64_t next_step) {
    BinaryWriter w;
    w.raw(kCkptMagic.data(), kCkptMagic.size());
    w.u32(kNetFileVersion);
    w.u32(shard_);
    w.u32(epoch_);
    w.u64(next_step);
    w.u64(local_nodes_.size());
    for (std::size_t k = 0; k < local_nodes_.size(); ++k) {
      w.u32(local_nodes_[k]);
      for (const std::uint64_t word : rngs_[k].state()) w.u64(word);
      BinaryWriter state;
      reducers_[k]->save_state(state);
      w.str(state.buffer());
    }
    w.u64(tx_seq_.size());
    for (const auto& [key, seq] : tx_seq_) {
      w.u32(key.first);
      w.u32(key.second);
      w.u64(seq);
    }
    {
      MutexLock lock(rx_mutex_);
      w.u64(rx_seq_.size());
      for (const auto& [key, seq] : rx_seq_) {
        w.u32(key.first);
        w.u32(key.second);
        w.u64(seq);
      }
      for (const std::uint32_t e : peer_epoch_) w.u32(e);
    }
    write_file_atomic(ckpt_path(config_.run_dir, shard_), std::move(w));
  }

  /// Restores the previous incarnation's checkpoint; returns the step to
  /// resume from (0 = nothing usable, start fresh — which IS the degraded
  /// restore semantics, not an error: the run continues from initial state
  /// and the accuracy impact is measured like any other fault).
  [[nodiscard]] std::uint64_t try_restore() {
    const std::string body = read_file_checked(ckpt_path(config_.run_dir, shard_));
    if (body.empty()) return 0;
    try {
      BinaryReader r(body);
      if (r.raw(kCkptMagic.size()) != kCkptMagic) return 0;
      if (r.u32() != kNetFileVersion) return 0;
      if (r.u32() != shard_) return 0;
      (void)r.u32();  // writer epoch — superseded by this incarnation's
      const std::uint64_t next_step = r.u64();
      if (r.u64() != local_nodes_.size()) return 0;
      for (std::size_t k = 0; k < local_nodes_.size(); ++k) {
        if (r.u32() != local_nodes_[k]) return 0;
        std::array<std::uint64_t, 4> rng_state{};
        for (auto& word : rng_state) word = r.u64();
        rngs_[k].set_state(rng_state);
        BinaryReader state(r.str());
        reducers_[k]->load_state(state);
      }
      const std::size_t tx_entries = r.count(16);
      for (std::size_t e = 0; e < tx_entries; ++e) {
        const net::NodeId from = r.u32();
        const net::NodeId to = r.u32();
        tx_seq_[{from, to}] = r.u64();
      }
      const std::size_t rx_entries = r.count(16);
      {
        // Runs before the RX thread exists, but the lock keeps the guarded-by
        // contract compiler-checkable instead of special-cased.
        MutexLock lock(rx_mutex_);
        for (std::size_t e = 0; e < rx_entries; ++e) {
          const net::NodeId from = r.u32();
          const net::NodeId to = r.u32();
          rx_seq_[{from, to}] = r.u64();
        }
        for (auto& e : peer_epoch_) e = r.u32();
      }
      r.expect_end();
      return next_step;
    } catch (const BinioError&) {
      return 0;  // torn or stale checkpoint: start fresh
    }
  }

  void write_result(std::uint64_t restored_from) {
    std::uint64_t blocked = 0;
    std::uint64_t rejected_pushes = 0;
    std::uint64_t watermark = 0;
    for (const auto& box : mailboxes_) {
      const Mailbox::Stats s = box->stats();
      blocked += s.blocked_pushes;
      rejected_pushes += s.rejected_pushes;
      watermark = std::max(watermark, s.high_watermark);
    }

    BinaryWriter w;
    w.raw(kResultMagic.data(), kResultMagic.size());
    w.u32(kNetFileVersion);
    w.u32(shard_);
    w.u32(epoch_);
    w.u64(config_.steps_per_node);
    w.u64(restored_from);
    w.u64(sent_);
    w.u64(rejected_);
    w.u64(heartbeats_sent_);
    w.u64(detector_downs_);
    w.u64(detector_ups_);
    w.u64(blocked);
    w.u64(rejected_pushes);
    w.u64(watermark);
    w.u64(num_shards_);
    {
      // The RX thread has joined by the time results are written; locking
      // anyway keeps the access pattern uniform for the analysis.
      MutexLock lock(rx_mutex_);
      for (const LinkCounters& link : rx_from_) {
        w.u64(link.received);
        w.u64(link.lost);
        w.u64(link.duplicated);
        w.u64(link.reordered);
      }
    }
    w.u64(local_nodes_.size());
    for (std::size_t k = 0; k < local_nodes_.size(); ++k) {
      w.u32(local_nodes_[k]);
      w.f64(reducers_[k]->estimate());
      core::write_mass(w, reducers_[k]->local_mass());
    }
    write_file_atomic(result_path(config_.run_dir, shard_), std::move(w));
  }

  const net::Topology& topology_;
  const SocketRuntimeConfig& config_;
  std::span<const std::uint16_t> ports_;
  const UdpSocket& socket_;
  const std::uint32_t shard_;
  const std::uint32_t epoch_;
  const std::uint32_t num_shards_;

  std::vector<net::NodeId> local_nodes_;
  std::vector<std::unique_ptr<core::Reducer>> reducers_;
  std::vector<Rng> rngs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Main-thread state.
  std::map<LinkKey, std::uint64_t> tx_seq_;
  std::vector<bool> shard_down_;
  std::uint64_t sent_ = 0;
  std::uint64_t heartbeat_seq_ = 0;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t detector_downs_ = 0;
  std::uint64_t detector_ups_ = 0;

  // Shared with the receive thread.
  std::atomic<bool> stop_{false};
  std::vector<std::atomic<std::int64_t>> last_heard_;
  Mutex rx_mutex_;
  std::map<LinkKey, std::uint64_t> rx_seq_ PCF_GUARDED_BY(rx_mutex_);
  std::vector<std::uint32_t> peer_epoch_ PCF_GUARDED_BY(rx_mutex_);
  std::vector<LinkCounters> rx_from_ PCF_GUARDED_BY(rx_mutex_);
  std::atomic<std::uint64_t> rejected_{0};
};

/// Parses one shard's sealed result blob into `report`; false on any defect.
bool parse_result(const std::string& dir, std::uint32_t shard, std::size_t num_shards,
                  ShardReport& report) {
  const std::string body = read_file_checked(result_path(dir, shard));
  if (body.empty()) return false;
  try {
    BinaryReader r(body);
    if (r.raw(kResultMagic.size()) != kResultMagic) return false;
    if (r.u32() != kNetFileVersion) return false;
    if (r.u32() != shard) return false;
    report.shard = shard;
    report.epoch = r.u32();
    report.steps_completed = r.u64();
    report.restored_from_step = r.u64();
    report.datagrams_sent = r.u64();
    report.frames_rejected = r.u64();
    report.heartbeats_sent = r.u64();
    report.detector_downs = r.u64();
    report.detector_ups = r.u64();
    report.mailbox_blocked_pushes = r.u64();
    report.mailbox_rejected_pushes = r.u64();
    report.mailbox_high_watermark = r.u64();
    if (r.u64() != num_shards) return false;
    report.rx_from.assign(num_shards, LinkCounters{});
    for (LinkCounters& link : report.rx_from) {
      link.received = r.u64();
      link.lost = r.u64();
      link.duplicated = r.u64();
      link.reordered = r.u64();
    }
    const std::size_t locals = r.count(4);
    report.nodes.clear();
    report.estimates.clear();
    report.masses.clear();
    for (std::size_t k = 0; k < locals; ++k) {
      report.nodes.push_back(r.u32());
      report.estimates.push_back(r.f64());
      report.masses.push_back(core::read_mass(r));
    }
    r.expect_end();
    report.produced = true;
    return true;
  } catch (const BinioError&) {
    return false;
  }
}

}  // namespace

LinkCounters ShardReport::rx_total() const noexcept {
  LinkCounters total;
  for (const LinkCounters& link : rx_from) {
    total.received += link.received;
    total.lost += link.lost;
    total.duplicated += link.duplicated;
    total.reordered += link.reordered;
  }
  return total;
}

LinkCounters SocketTrialReport::rx_total() const noexcept {
  LinkCounters total;
  for (const ShardReport& s : shards) {
    const LinkCounters t = s.rx_total();
    total.received += t.received;
    total.lost += t.lost;
    total.duplicated += t.duplicated;
    total.reordered += t.reordered;
  }
  return total;
}

std::uint64_t SocketTrialReport::datagrams_sent() const noexcept {
  std::uint64_t total = 0;
  for (const ShardReport& s : shards) total += s.datagrams_sent;
  return total;
}

double SocketTrialReport::measured_loss_rate() const noexcept {
  const LinkCounters t = rx_total();
  const std::uint64_t denom = t.received + t.lost;
  return denom == 0 ? 0.0 : static_cast<double>(t.lost) / static_cast<double>(denom);
}

double SocketTrialReport::measured_duplicate_rate() const noexcept {
  const LinkCounters t = rx_total();
  const std::uint64_t denom = t.received + t.lost;
  return denom == 0 ? 0.0 : static_cast<double>(t.duplicated) / static_cast<double>(denom);
}

double SocketTrialReport::measured_reorder_rate() const noexcept {
  const LinkCounters t = rx_total();
  const std::uint64_t denom = t.received + t.lost;
  return denom == 0 ? 0.0 : static_cast<double>(t.reordered) / static_cast<double>(denom);
}

std::vector<double> SocketTrialReport::estimates_by_node(std::size_t num_nodes) const {
  std::vector<double> out(num_nodes, std::numeric_limits<double>::quiet_NaN());
  for (const ShardReport& s : shards) {
    if (!s.produced) continue;
    for (std::size_t k = 0; k < s.nodes.size(); ++k) {
      if (s.nodes[k] < num_nodes) out[s.nodes[k]] = s.estimates[k];
    }
  }
  return out;
}

SocketRuntime::SocketRuntime(net::Topology topology, std::span<const core::Mass> initial,
                             SocketRuntimeConfig config)
    : topology_(std::move(topology)), config_(std::move(config)) {
  PCF_CHECK_MSG(initial.size() == topology_.size(), "one initial mass per node required");
  PCF_CHECK_MSG(config_.num_shards >= 1 && config_.num_shards <= topology_.size(),
                "socket runtime wants 1 <= num_shards <= nodes");
  PCF_CHECK_MSG(!config_.run_dir.empty(), "socket runtime needs a run_dir");
  if (core::needs_tree_schedule(config_.algorithm) && !config_.reducer.tree) {
    config_.reducer.tree = std::make_shared<const net::TreeSchedule>(
        net::build_tree_schedule(topology_, config_.reducer.tree_kind));
  }
  initial_.assign(initial.begin(), initial.end());
}

int SocketRuntime::child_main(std::uint32_t shard, std::uint32_t epoch) {
  try {
    ShardProcess process(topology_, config_, initial_, ports_, sockets_[shard], shard, epoch);
    return process.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcflow-shard[%u]: %s\n", shard, e.what());
    return 3;
  } catch (...) {
    return 3;
  }
}

SocketTrialReport SocketRuntime::run(const ChaosPlan& chaos) {
  PCF_CHECK_MSG(!ran_, "SocketRuntime::run may only be called once");
  ran_ = true;

  std::filesystem::create_directories(config_.run_dir);
  const auto num_shards = config_.num_shards;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    std::error_code ec;
    std::filesystem::remove(ckpt_path(config_.run_dir, s), ec);
    std::filesystem::remove(result_path(config_.run_dir, s), ec);
  }

  // Bind every shard socket BEFORE any fork: children inherit the full port
  // map, and a restarted child reuses the very same socket.
  sockets_.reserve(num_shards);
  ports_.clear();
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    sockets_.push_back(
        UdpSocket::bind_loopback(0, config_.socket_recv_buffer, config_.bind_attempts));
    ports_.push_back(sockets_.back().port());
  }

  SocketTrialReport report;
  report.shards.assign(num_shards, ShardReport{});
  for (std::uint32_t s = 0; s < num_shards; ++s) report.shards[s].shard = s;

  std::vector<pid_t> pids(num_shards, -1);
  std::vector<std::uint32_t> epochs(num_shards, 0);
  std::vector<std::size_t> shard_restarts(num_shards, 0);
  std::vector<bool> done(num_shards, false);
  std::vector<bool> failed(num_shards, false);

  const auto spawn = [&](std::uint32_t s) {
    const pid_t pid = ::fork();
    PCF_CHECK_MSG(pid >= 0, "socket runtime: fork failed");
    if (pid == 0) {
      ::_exit(child_main(s, epochs[s]));
    }
    pids[s] = pid;
  };
  for (std::uint32_t s = 0; s < num_shards; ++s) spawn(s);

  const std::int64_t started = now_ms();
  const std::int64_t deadline = started + config_.trial_timeout_ms;
  bool kill_fired = chaos.kill_shard < 0;
  bool stall_fired = chaos.stall_shard < 0;
  bool resume_fired = chaos.stall_shard < 0;

  std::size_t open = num_shards;
  while (open > 0 && now_ms() < deadline) {
    const std::int64_t elapsed = now_ms() - started;
    if (!kill_fired && elapsed >= chaos.kill_after_ms) {
      kill_fired = true;
      const auto s = static_cast<std::uint32_t>(chaos.kill_shard);
      if (s < num_shards && pids[s] > 0 && !done[s]) ::kill(pids[s], SIGKILL);
    }
    if (!stall_fired && elapsed >= chaos.stall_after_ms) {
      stall_fired = true;
      const auto s = static_cast<std::uint32_t>(chaos.stall_shard);
      if (s < num_shards && pids[s] > 0 && !done[s]) ::kill(pids[s], SIGSTOP);
    }
    if (!resume_fired && stall_fired && elapsed >= chaos.stall_after_ms + chaos.stall_ms) {
      resume_fired = true;
      const auto s = static_cast<std::uint32_t>(chaos.stall_shard);
      if (s < num_shards && pids[s] > 0 && !done[s]) ::kill(pids[s], SIGCONT);
    }

    bool reaped = false;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
      if (done[s] || failed[s] || pids[s] <= 0) continue;
      int status = 0;
      const pid_t p = ::waitpid(pids[s], &status, WNOHANG);
      if (p != pids[s]) continue;
      reaped = true;
      if (WIFSIGNALED(status)) {
        // Real process death. Restart from the last checkpoint — or give the
        // shard up once the restart budget is burned.
        if (shard_restarts[s] < config_.max_restarts) {
          ++shard_restarts[s];
          ++report.restarts;
          ++epochs[s];
          spawn(s);
        } else {
          failed[s] = true;
          ++report.failures;
          --open;
        }
      } else if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
        done[s] = true;
        --open;
      } else {
        failed[s] = true;  // voluntary nonzero exit: a bug, not a fault
        ++report.failures;
        --open;
      }
    }
    if (!reaped) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Deadline: whatever is still up gets killed and counted failed.
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    if (done[s] || failed[s] || pids[s] <= 0) continue;
    ::kill(pids[s], SIGKILL);
    int status = 0;
    (void)::waitpid(pids[s], &status, 0);
    failed[s] = true;
    ++report.failures;
  }

  report.completed = true;
  for (std::uint32_t s = 0; s < num_shards; ++s) {
    report.shards[s].epoch = epochs[s];
    if (!parse_result(config_.run_dir, s, num_shards, report.shards[s])) {
      report.completed = false;
    }
  }
  return report;
}

}  // namespace pcf::runtime
