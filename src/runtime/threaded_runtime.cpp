#include "runtime/threaded_runtime.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pcf::runtime {

namespace {
std::pair<net::NodeId, net::NodeId> norm_edge(net::NodeId a, net::NodeId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}
}  // namespace

ThreadedRuntime::ThreadedRuntime(net::Topology topology,
                                 std::span<const core::Mass> initial, RuntimeConfig config)
    : topology_(topology), config_(std::move(config)) {
  PCF_CHECK_MSG(initial.size() == topology.size(), "one initial mass per node required");
  if (config_.num_threads == 0) {
    config_.num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  config_.num_threads = std::min(config_.num_threads, topology.size());

  if (core::needs_tree_schedule(config_.algorithm) && !config_.reducer.tree) {
    config_.reducer.tree = std::make_shared<const net::TreeSchedule>(
        net::build_tree_schedule(topology, config_.reducer.tree_kind));
  }

  const Rng base(config_.seed);
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    nodes_.push_back(core::make_reducer(config_.algorithm, config_.reducer));
    nodes_.back()->init(i, topology.neighbors(i), initial[i]);
    node_rngs_.push_back(base.fork(i));
    mailboxes_.push_back(std::make_unique<Mailbox>(config_.mailbox_capacity));
  }
  shards_.resize(config_.num_threads);
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    shards_[i % config_.num_threads].push_back(i);
  }
}

void ThreadedRuntime::drain_node(net::NodeId i) {
  for (auto& env : mailboxes_[i]->drain()) {
    nodes_[i]->on_receive(env.from, env.packet);
    delivered_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadedRuntime::deliver(std::size_t worker_index, net::NodeId to, Envelope envelope) {
  if (config_.mailbox_capacity == 0) {
    mailboxes_[to]->push(std::move(envelope));
    return;
  }
  // Bounded mode. A blocking push here can deadlock: the destination's owner
  // may already be parked at the step barrier (it will not drain again until
  // *this* worker arrives too). So: fail fast, make progress by draining our
  // own shard (frees peers blocked on us, models "receiver busy"), retry
  // once, and if the box is still full shed the packet — gossip reductions
  // treat that exactly like wire loss, and the drop is counted.
  if (mailboxes_[to]->try_push(envelope)) return;
  for (const net::NodeId n : shards_[worker_index]) drain_node(n);
  if (mailboxes_[to]->try_push(std::move(envelope))) return;
  dropped_.fetch_add(1, std::memory_order_relaxed);
}

void ThreadedRuntime::worker(std::size_t worker_index, std::size_t steps_per_node,
                             std::barrier<>& step_barrier) {
  // Workers only ever mutate their own shard's reducers; cross-thread
  // interaction is exclusively via mailboxes. The per-step barrier makes
  // gossip steps globally interleave: without it, an OS that runs threads to
  // completion (e.g. a single-core box) would let one worker fire its entire
  // budget of sends before anyone replies — one giant burst instead of an
  // iterative exchange, and the computation barely mixes.
  for (std::size_t step = 0; step < steps_per_node; ++step) {
    for (const net::NodeId i : shards_[worker_index]) {
      drain_node(i);
      auto out = nodes_[i]->make_message(node_rngs_[i]);
      if (!out) continue;
      if (dead_links_.count(norm_edge(i, out->to)) != 0) continue;  // cable cut
      deliver(worker_index, out->to, {i, std::move(out->packet)});
    }
    step_barrier.arrive_and_wait();
  }
}

void ThreadedRuntime::run(std::size_t steps_per_node) {
  apply_pending_faults();  // events queued while idle take effect before step 0
  {
    const auto timer = perf_.time(PerfCounters::Phase::kRun);
    workers_active_.store(true, std::memory_order_release);
    std::barrier step_barrier(static_cast<std::ptrdiff_t>(config_.num_threads));
    std::vector<std::thread> workers;
    workers.reserve(config_.num_threads);
    for (std::size_t w = 0; w < config_.num_threads; ++w) {
      workers.emplace_back(
          [this, w, steps_per_node, &step_barrier] { worker(w, steps_per_node, step_barrier); });
    }
    for (auto& t : workers) t.join();
    workers_active_.store(false, std::memory_order_release);
  }
  // Quiesce: receives never generate packets, so one drain pass empties all
  // in-flight traffic.
  {
    const auto timer = perf_.time(PerfCounters::Phase::kDrain);
    for (net::NodeId i = 0; i < nodes_.size(); ++i) drain_node(i);
  }
  apply_pending_faults();  // events queued mid-phase land at this boundary
  perf_.rounds += steps_per_node;
  perf_.deliveries = delivered_.load(std::memory_order_relaxed);
  perf_.mailbox_dropped = dropped_.load(std::memory_order_relaxed);
  std::uint64_t blocked = 0;
  std::uint64_t rejected = 0;
  std::uint64_t watermark = 0;
  for (const auto& box : mailboxes_) {
    const Mailbox::Stats s = box->stats();
    blocked += s.blocked_pushes;
    rejected += s.rejected_pushes;
    watermark = std::max(watermark, s.high_watermark);
  }
  perf_.mailbox_blocked_pushes = blocked;
  perf_.mailbox_rejected_pushes = rejected;
  perf_.mailbox_high_watermark = watermark;
}

void ThreadedRuntime::queue_fault(net::NodeId a, net::NodeId b, bool heal) {
  // Validate eagerly so a bad edge surfaces at the call site, not at the next
  // phase boundary where the caller's stack is long gone.
  PCF_CHECK_MSG(topology_.has_edge(a, b), "queue_fault: no such link");
  MutexLock lock(pending_faults_mutex_);
  pending_faults_.push_back({a, b, heal});
}

std::size_t ThreadedRuntime::pending_faults() const {
  MutexLock lock(pending_faults_mutex_);
  return pending_faults_.size();
}

void ThreadedRuntime::apply_pending_faults() {
  std::vector<QueuedFault> events;
  {
    MutexLock lock(pending_faults_mutex_);
    events.swap(pending_faults_);
  }
  // Workers are not active at either call site, so the immediate APIs'
  // phase-boundary guard passes; redundant events are no-ops there already.
  for (const QueuedFault& e : events) {
    if (e.heal) {
      heal_link(e.a, e.b);
    } else {
      fail_link(e.a, e.b);
    }
  }
}

void ThreadedRuntime::fail_link(net::NodeId a, net::NodeId b) {
  // Workers read dead_links_ lock-free; mutating it mid-phase would be a data
  // race (and was, before this guard — found by tsan on the bench harness).
  PCF_CHECK_MSG(!workers_active(), "fail_link while a run() phase is active");
  PCF_CHECK_MSG(topology_.has_edge(a, b), "fail_link: no such link");
  if (!dead_links_.insert(norm_edge(a, b)).second) return;
  nodes_[a]->on_link_down(b);
  nodes_[b]->on_link_down(a);
}

void ThreadedRuntime::heal_link(net::NodeId a, net::NodeId b) {
  // Same contract as fail_link: dead_links_ is read lock-free by workers.
  PCF_CHECK_MSG(!workers_active(), "heal_link while a run() phase is active");
  PCF_CHECK_MSG(topology_.has_edge(a, b), "heal_link: no such link");
  if (dead_links_.erase(norm_edge(a, b)) == 0) return;
  nodes_[a]->on_link_up(b);
  nodes_[b]->on_link_up(a);
}

std::vector<double> ThreadedRuntime::estimates(std::size_t k) const {
  std::vector<double> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->estimate(k));
  return out;
}

core::Mass ThreadedRuntime::total_mass() const {
  PCF_CHECK_MSG(!nodes_.empty(), "total_mass on an empty runtime");
  core::Mass total = nodes_.front()->local_mass();
  for (std::size_t i = 1; i < nodes_.size(); ++i) total += nodes_[i]->local_mass();
  return total;
}

}  // namespace pcf::runtime
