// Threaded gossip runtime — the algorithms outside the simulator.
//
// Every reducer from src/core runs here unmodified: nodes are sharded over
// worker threads and packets travel through per-node mailboxes. Within a
// step, workers interleave freely — delivery timing and crossings are real
// nondeterminism, not simulated; a lightweight per-step barrier only paces
// the workers so that gossip actually alternates (see worker()). Per
// directed link FIFO holds because only the owning thread of the sender
// produces packets for that link and mailboxes preserve push order.
//
// This is the evidence that the reduction algorithms depend only on
// point-to-point messaging — the same property that would let them run over
// MPI or sockets.
#pragma once

#include <atomic>
#include <barrier>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "runtime/mailbox.hpp"
#include "support/perf.hpp"

namespace pcf::runtime {

struct RuntimeConfig {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::ReducerConfig reducer;
  std::uint64_t seed = 1;
  /// Worker threads; nodes are sharded round-robin. 0 = hardware concurrency.
  std::size_t num_threads = 0;
};

class ThreadedRuntime {
 public:
  /// The runtime stores its own copy of the topology, so temporaries are safe.
  ThreadedRuntime(net::Topology topology, std::span<const core::Mass> initial,
                  RuntimeConfig config);

  /// Runs a phase in which every node performs `steps_per_node` gossip sends
  /// (plus however many receives arrive), then drains all in-flight packets.
  /// Blocks until the phase is complete. May be called repeatedly.
  void run(std::size_t steps_per_node);

  /// Injects a permanent link failure. Must be called between run() phases:
  /// workers read dead_links_ without a lock, so mutating it mid-phase is a
  /// data race. Calling this while workers are active throws
  /// ContractViolation instead of racing.
  void fail_link(net::NodeId a, net::NodeId b);

  /// Heals a previously failed link: both endpoints re-admit the neighbor
  /// (Reducer::on_link_up) with zeroed flows. Same phase-boundary contract as
  /// fail_link — throws ContractViolation while workers are active.
  void heal_link(net::NodeId a, net::NodeId b);

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::vector<double> estimates(std::size_t k = 0) const;
  [[nodiscard]] core::Mass total_mass() const;
  [[nodiscard]] const core::Reducer& node(net::NodeId i) const { return *nodes_.at(i); }
  [[nodiscard]] std::size_t messages_delivered() const noexcept { return delivered_.load(); }
  /// True while a run() phase has worker threads up (test/guard hook).
  [[nodiscard]] bool workers_active() const noexcept {
    return workers_active_.load(std::memory_order_acquire);
  }
  /// Wall-clock per phase (kRun / kDrain) and step counters.
  [[nodiscard]] const PerfCounters& perf() const noexcept { return perf_; }

 private:
  void worker(std::size_t worker_index, std::size_t steps_per_node, std::barrier<>& step_barrier);
  void drain_node(net::NodeId i);

  net::Topology topology_;
  RuntimeConfig config_;
  std::vector<std::unique_ptr<core::Reducer>> nodes_;
  std::vector<Rng> node_rngs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::vector<net::NodeId>> shards_;  // nodes per worker
  std::set<std::pair<net::NodeId, net::NodeId>> dead_links_;
  std::atomic<std::size_t> delivered_{0};
  std::atomic<bool> workers_active_{false};
  PerfCounters perf_;
};

}  // namespace pcf::runtime
