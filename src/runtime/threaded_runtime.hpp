// Threaded gossip runtime — the algorithms outside the simulator.
//
// Every reducer from src/core runs here unmodified: nodes are sharded over
// worker threads and packets travel through per-node mailboxes. Within a
// step, workers interleave freely — delivery timing and crossings are real
// nondeterminism, not simulated; a lightweight per-step barrier only paces
// the workers so that gossip actually alternates (see worker()). Per
// directed link FIFO holds because only the owning thread of the sender
// produces packets for that link and mailboxes preserve push order.
//
// This is the evidence that the reduction algorithms depend only on
// point-to-point messaging — the same property that would let them run over
// MPI or sockets.
#pragma once

#include <atomic>
#include <barrier>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "runtime/mailbox.hpp"
#include "support/annotations.hpp"
#include "support/perf.hpp"

namespace pcf::runtime {

struct RuntimeConfig {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::ReducerConfig reducer;
  std::uint64_t seed = 1;
  /// Worker threads; nodes are sharded round-robin. 0 = hardware concurrency.
  std::size_t num_threads = 0;
  /// Per-node mailbox capacity; 0 = unbounded (the original behavior). With a
  /// bound, workers use non-blocking pushes and drain their own shard while a
  /// destination box is full — backpressure instead of unbounded queues; the
  /// pressure shows up in PerfCounters::mailbox_rejected_pushes. A blocking
  /// push would deadlock against the per-step barrier (a full hub mailbox
  /// whose owner is already waiting at the barrier), which is why the bounded
  /// path retries with drains instead of waiting.
  std::size_t mailbox_capacity = 0;
};

class ThreadedRuntime {
 public:
  /// The runtime stores its own copy of the topology, so temporaries are safe.
  ThreadedRuntime(net::Topology topology, std::span<const core::Mass> initial,
                  RuntimeConfig config);

  /// Runs a phase in which every node performs `steps_per_node` gossip sends
  /// (plus however many receives arrive), then drains all in-flight packets.
  /// Blocks until the phase is complete. May be called repeatedly.
  void run(std::size_t steps_per_node);

  /// Injects a permanent link failure. Must be called between run() phases:
  /// workers read dead_links_ without a lock, so mutating it mid-phase is a
  /// data race. Calling this while workers are active throws
  /// ContractViolation instead of racing.
  void fail_link(net::NodeId a, net::NodeId b);

  /// Heals a previously failed link: both endpoints re-admit the neighbor
  /// (Reducer::on_link_up) with zeroed flows. Same phase-boundary contract as
  /// fail_link — throws ContractViolation while workers are active.
  void heal_link(net::NodeId a, net::NodeId b);

  /// Queues a link fault (heal = false: fail, true: heal) to be applied at
  /// the next phase boundary. Unlike fail_link/heal_link this may be called
  /// from any thread at any time — including while a run() phase is active —
  /// so chaos-style drivers do not need to special-case the runtime's
  /// phase discipline. Queued events are applied in queue order when the
  /// current phase's workers have joined (and, if the runtime is idle, by the
  /// next run() before its workers start). The edge must exist in the
  /// topology; redundant events (failing a dead link, healing a live one) are
  /// benign no-ops, exactly like the immediate APIs.
  void queue_fault(net::NodeId a, net::NodeId b, bool heal);

  /// Queued-but-unapplied fault count (test/observability hook).
  [[nodiscard]] std::size_t pending_faults() const;

  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::vector<double> estimates(std::size_t k = 0) const;
  [[nodiscard]] core::Mass total_mass() const;
  [[nodiscard]] const core::Reducer& node(net::NodeId i) const { return *nodes_.at(i); }
  [[nodiscard]] std::size_t messages_delivered() const noexcept { return delivered_.load(); }
  /// True while a run() phase has worker threads up (test/guard hook).
  [[nodiscard]] bool workers_active() const noexcept {
    return workers_active_.load(std::memory_order_acquire);
  }
  /// Wall-clock per phase (kRun / kDrain) and step counters.
  [[nodiscard]] const PerfCounters& perf() const noexcept { return perf_; }

 private:
  void worker(std::size_t worker_index, std::size_t steps_per_node, std::barrier<>& step_barrier);
  void drain_node(net::NodeId i);
  void deliver(std::size_t worker_index, net::NodeId to, Envelope envelope);
  void apply_pending_faults();  ///< caller guarantees workers are not active

  net::Topology topology_;
  RuntimeConfig config_;
  std::vector<std::unique_ptr<core::Reducer>> nodes_;
  std::vector<Rng> node_rngs_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::vector<net::NodeId>> shards_;  // nodes per worker
  std::set<std::pair<net::NodeId, net::NodeId>> dead_links_;
  std::atomic<std::size_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};  // bounded mode: envelopes shed after retry
  std::atomic<bool> workers_active_{false};
  PerfCounters perf_;  // phase-disciplined: written only while workers are down
  struct QueuedFault {
    net::NodeId a;
    net::NodeId b;
    bool heal;
  };
  mutable Mutex pending_faults_mutex_;
  std::vector<QueuedFault> pending_faults_ PCF_GUARDED_BY(pending_faults_mutex_);
};

}  // namespace pcf::runtime
