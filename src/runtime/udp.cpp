#include "runtime/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

namespace pcf::runtime {

namespace {

[[nodiscard]] sockaddr_in loopback_addr(std::uint16_t port) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

[[nodiscard]] std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

UdpSocket UdpSocket::bind_loopback(std::uint16_t port, int recv_buffer_bytes,
                                   int bind_attempts) {
  if (bind_attempts < 1) bind_attempts = 1;
  for (int attempt = 1;; ++attempt) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) throw SocketError(errno_text("udp: socket()"));

    if (recv_buffer_bytes > 0) {
      // Best effort: the kernel clamps to [min, rmem_max]; a runtime that
      // asked for a tiny buffer still works with whatever it got — the
      // effective size only changes how quickly backpressure becomes loss.
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &recv_buffer_bytes, sizeof(recv_buffer_bytes));
    }

    const sockaddr_in addr = loopback_addr(port);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      sockaddr_in bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
        const std::string text = errno_text("udp: getsockname()");
        ::close(fd);
        throw SocketError(text);
      }
      UdpSocket s;
      s.fd_ = fd;
      s.port_ = ntohs(bound.sin_port);
      return s;
    }

    const int bind_errno = errno;
    ::close(fd);
    if (bind_errno != EADDRINUSE || attempt >= bind_attempts) {
      throw SocketError("udp: bind(127.0.0.1:" + std::to_string(port) +
                        ") failed after " + std::to_string(attempt) +
                        " attempt(s): " + std::strerror(bind_errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

UdpSocket::~UdpSocket() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocket::send_to(std::uint16_t port, std::string_view datagram) const noexcept {
  const sockaddr_in addr = loopback_addr(port);
  for (;;) {
    const ssize_t n = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                               reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (n >= 0) return static_cast<std::size_t>(n) == datagram.size();
    if (errno == EINTR) continue;
    return false;  // ENOBUFS etc. — loss at the sender
  }
}

std::optional<std::string> UdpSocket::receive(int timeout_ms) const {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return std::nullopt;  // timeout
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_text("udp: poll()"));
    }
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
      throw SocketError("udp: poll() reported a broken descriptor");
    }
    break;
  }

  // Any reducer packet frames in well under 1 KiB; 4 KiB leaves headroom for
  // future frame kinds while still catching absurd datagrams (truncated by
  // recvfrom, then rejected by the frame checksum).
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recvfrom(fd_, buffer, sizeof(buffer), 0, nullptr, nullptr);
    if (n >= 0) return std::string(buffer, static_cast<std::size_t>(n));
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    throw SocketError(errno_text("udp: recvfrom()"));
  }
}

}  // namespace pcf::runtime
