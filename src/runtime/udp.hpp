// Minimal RAII wrapper over a loopback UDP socket — the socket runtime's
// only contact with the BSD socket API.
//
// Loopback UDP is the fault model the paper assumes, realized by the kernel
// instead of an injector: datagrams to a full receive buffer are silently
// dropped (real loss the receiver later MEASURES via sequence gaps), nothing
// is retransmitted, and ordering is best-effort. bind_loopback() deliberately
// supports a tiny SO_RCVBUF so backpressure (a slow consumer, a blocked
// bounded mailbox) overflows into genuine kernel-level loss rather than
// unbounded queueing.
//
// Binding retries: on a busy machine a fixed port can be transiently taken
// (CI runners reusing ports in TIME_WAIT); bind_loopback retries EADDRINUSE
// with a short pause before giving up. Ephemeral binds (port 0) never
// collide and get their kernel-assigned port reported back via port().
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pcf::runtime {

/// Unrecoverable socket-layer failure (bind/recv hard errors). Transient
/// conditions (timeout, full buffers) are return values, not exceptions.
class SocketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class UdpSocket {
 public:
  /// Invalid socket; use bind_loopback() to obtain a real one.
  UdpSocket() = default;

  /// Binds a UDP socket on 127.0.0.1. `port` 0 asks the kernel for an
  /// ephemeral port (reported by port()). `recv_buffer_bytes` > 0 shrinks or
  /// grows SO_RCVBUF (the kernel clamps to its limits). `bind_attempts`
  /// retries EADDRINUSE with a 50 ms pause between attempts.
  [[nodiscard]] static UdpSocket bind_loopback(std::uint16_t port = 0, int recv_buffer_bytes = 0,
                                               int bind_attempts = 1);

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;
  ~UdpSocket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Fire-and-forget datagram to 127.0.0.1:`port`. Returns false when the
  /// kernel refused to take the datagram (ENOBUFS and friends) — loss at the
  /// sender, indistinguishable on the wire from loss in transit, so callers
  /// just count it sent and let the receiver's gap accounting see it.
  bool send_to(std::uint16_t port, std::string_view datagram) const noexcept;

  /// Waits up to `timeout_ms` for one datagram (0 polls, < 0 blocks).
  /// nullopt on timeout or a transiently failed receive; throws SocketError
  /// only on unrecoverable errors (e.g. the descriptor went bad).
  [[nodiscard]] std::optional<std::string> receive(int timeout_ms) const;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace pcf::runtime
