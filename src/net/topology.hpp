// Static communication topologies.
//
// Gossip-based reduction only assumes that every node knows a fixed, nonempty
// neighbor set N_i and that the union graph is connected. This module builds
// the topologies the paper evaluates (bus, 3D torus, hypercube) plus a set of
// generic graphs used by tests and ablations. Graphs are undirected, simple,
// and stored in CSR form for cache-friendly neighbor scans.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/rng.hpp"

namespace pcf::net {

using NodeId = std::uint32_t;

class Topology {
 public:
  /// Line ("bus") network: node i talks to i-1 and i+1. The paper's Section
  /// II-B worked example.
  [[nodiscard]] static Topology bus(std::size_t n);
  /// Cycle.
  [[nodiscard]] static Topology ring(std::size_t n);
  /// rows × cols mesh; `wrap` turns it into a 2D torus.
  [[nodiscard]] static Topology grid2d(std::size_t rows, std::size_t cols, bool wrap = false);
  /// 3D torus with side lengths x, y, z (paper: 2^i × 2^i × 2^i).
  [[nodiscard]] static Topology torus3d(std::size_t x, std::size_t y, std::size_t z);
  /// d-dimensional hypercube with 2^d nodes.
  [[nodiscard]] static Topology hypercube(std::size_t dims);
  /// Fully connected graph.
  [[nodiscard]] static Topology complete(std::size_t n);
  /// Star: node 0 is the hub.
  [[nodiscard]] static Topology star(std::size_t n);
  /// Complete binary tree in heap order.
  [[nodiscard]] static Topology binary_tree(std::size_t n);
  /// Random d-regular graph (configuration model with rejection; falls back
  /// to a Hamiltonian-cycle + random-matching construction if rejection takes
  /// too long). Requires n*d even and d < n.
  [[nodiscard]] static Topology random_regular(std::size_t n, std::size_t degree, Rng& rng);
  /// Erdős–Rényi G(n, p) unioned with a random spanning tree so that the
  /// result is always connected (documented deviation from plain G(n,p)).
  [[nodiscard]] static Topology erdos_renyi(std::size_t n, double p, Rng& rng);
  /// Watts–Strogatz small world: a ring lattice where each node connects to
  /// its k nearest neighbors (k even), with each lattice edge rewired to a
  /// random endpoint with probability beta. Rewirings that would disconnect
  /// or duplicate are skipped, so the graph stays connected and simple.
  [[nodiscard]] static Topology watts_strogatz(std::size_t n, std::size_t k, double beta,
                                               Rng& rng);
  /// Barabási–Albert preferential attachment: starts from a small clique and
  /// attaches every new node to m existing nodes with probability
  /// proportional to their degree (scale-free degree distribution).
  [[nodiscard]] static Topology barabasi_albert(std::size_t n, std::size_t m, Rng& rng);
  /// Builds from an explicit undirected edge list (validated: simple graph).
  [[nodiscard]] static Topology from_edges(std::size_t n,
                                           std::span<const std::pair<NodeId, NodeId>> edges,
                                           std::string name = "custom");

  /// Parses a CLI spec: "bus:N", "ring:N", "grid:RxC", "torus2d:RxC",
  /// "torus3d:L" or "torus3d:XxYxZ", "hypercube:D", "complete:N", "star:N",
  /// "tree:N", "regular:N:D", "er:N:P", "smallworld:N:K:BETA", "ba:N:M".
  [[nodiscard]] static Topology parse(const std::string& spec, Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t edge_count() const noexcept { return adjacency_.size() / 2; }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId i) const noexcept;
  [[nodiscard]] std::size_t degree(NodeId i) const noexcept;
  [[nodiscard]] bool has_edge(NodeId i, NodeId j) const noexcept;
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// All undirected edges (i < j), in deterministic order.
  [[nodiscard]] std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Graphviz DOT rendering of the graph (undirected), e.g. for debugging
  /// fault plans: `dot -Tpng <(pcflow …) -o net.png`.
  [[nodiscard]] std::string to_dot() const;

  /// BFS hop distances from `from` (SIZE_MAX for unreachable nodes).
  [[nodiscard]] std::vector<std::size_t> bfs_distances(NodeId from) const;
  [[nodiscard]] bool is_connected() const;
  /// Exact diameter via all-pairs BFS — O(n·m); intended for test-sized graphs.
  [[nodiscard]] std::size_t diameter() const;

 private:
  Topology() = default;
  static Topology build(std::size_t n, std::vector<std::pair<NodeId, NodeId>> edges,
                        std::string name);

  std::vector<std::size_t> offsets_;  // CSR offsets, size n+1
  std::vector<NodeId> adjacency_;     // sorted neighbor lists
  std::string name_;
};

}  // namespace pcf::net
