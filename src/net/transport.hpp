// Datagram framing for the socket runtime — core::Packet over UDP.
//
// Every datagram is one self-contained frame: magic + version header, a
// frame kind, the kind's body, and a trailing FNV-1a checksum over all
// preceding bytes. Framing is versioned exactly like the checkpoint codecs:
// a frame from a different build generation is refused (version skew), a
// truncated or bit-flipped datagram is refused (checksum / bounds checks),
// and refusal is always an exception the receive loop converts into a
// counted drop (PerfCounters::frames_rejected) — never a crash. UDP already
// checksums payloads, but the runtime cannot tell a kernel-validated
// datagram from a stray packet on a reused port; the application-level
// frame check is what makes "decoded" trustworthy.
//
// Two frame kinds exist:
//  * data       one reducer Packet on a directed link, carrying the link's
//               monotone sequence number. Receivers use the sequence to
//               MEASURE loss (gaps), duplication (repeats) and reordering
//               (stale numbers) — the observed-fault counters the trust
//               table is reconciled against. Enforcing monotone delivery
//               also preserves the reducers' per-link FIFO contract.
//  * heartbeat  shard-to-shard failure-detector beacon with the sender's
//               restart epoch, so a peer that died and was restarted is
//               distinguishable from one that was merely slow.
//
// Encoding uses the little-endian bounds-checked binio primitives, so frames
// are byte-identical across platforms; decode throws TransportError on any
// malformed input.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/reducer.hpp"
#include "net/topology.hpp"

namespace pcf::net {

/// Malformed, version-skewed or corrupted frame. The receive path treats
/// this as a counted drop, not an error.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// 4-byte frame magic.
inline constexpr std::string_view kFrameMagic = "PCFD";
/// Bump on any change to the frame layout below.
inline constexpr std::uint32_t kTransportVersion = 1;

enum class FrameKind : std::uint8_t {
  kData = 1,
  kHeartbeat = 2,
};

/// One reducer packet on the directed link from → to.
struct DataFrame {
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t seq = 0;  ///< per directed link, monotone from 1
  core::Packet packet;
};

/// Failure-detector beacon between shard processes.
struct HeartbeatFrame {
  std::uint32_t shard = 0;  ///< sender shard index
  std::uint32_t epoch = 0;  ///< sender restart generation (0 = first life)
  std::uint64_t seq = 0;    ///< beacon counter within the epoch
};

/// Decoded frame: `kind` selects which body is meaningful.
struct Frame {
  FrameKind kind = FrameKind::kData;
  DataFrame data;
  HeartbeatFrame heartbeat;
};

[[nodiscard]] std::string encode_frame(const DataFrame& frame);
[[nodiscard]] std::string encode_frame(const HeartbeatFrame& frame);

/// Parses and validates one datagram. Throws TransportError on bad magic,
/// version skew, unknown kind, truncation, trailing bytes, or checksum
/// mismatch — each with a distinct message (tests pin them).
[[nodiscard]] Frame decode_frame(std::string_view bytes);

}  // namespace pcf::net
