// Spanning-tree reduce schedules over a static Topology.
//
// Tree-structured reductions (correction-based Reduce/Allreduce, Küttler &
// Härtig) need every node to know its parent toward the root and the tree
// depth of its neighbors. This module builds that schedule centrally, once,
// from the Topology — the same dynamic reduce-topology selection idea as
// Hoplite's reduce_dependency: pick the specialized shape (star, chain,
// heap-order binary tree) when the graph supports it, fall back to a BFS
// spanning tree otherwise. Every tree edge is a topology edge, so tree
// messages travel over the same links the gossip algorithms use.
//
// The depth map is the load-bearing invariant: depth[parent[i]] ==
// depth[i] - 1 for every non-root, so "re-attach to a live neighbor of
// strictly smaller depth" (the correction rule on parent loss) can never
// form a cycle.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/topology.hpp"

namespace pcf::net {

enum class TreeKind : std::uint8_t {
  kAuto,   ///< select from the topology shape (star > chain > binary > BFS)
  kChain,  ///< id-order path layering, depth[i] = i (requires edges (i-1, i))
  kBinary, ///< heap-order layering, depth[i] = depth[(i-1)/2] + 1
  kStar,   ///< a universal hub is the root, everyone else at depth 1
  kBfs,    ///< BFS layering from node 0
};

[[nodiscard]] std::string_view to_string(TreeKind k) noexcept;
/// Parses "auto" | "chain" | "binary" | "star" | "bfs".
[[nodiscard]] TreeKind parse_tree_kind(std::string_view name);

/// A rooted spanning tree of a Topology, shared read-only by all nodes.
/// Parents are derived from the depth map: each non-root attaches to its
/// (depth, id)-minimal neighbor of strictly smaller depth — the identical
/// rule the correction reducer re-applies over its LIVE neighbors, so the
/// published tree is exactly the fault-free runtime tree.
struct TreeSchedule {
  TreeKind kind = TreeKind::kBfs;       ///< resolved shape (never kAuto)
  NodeId root = 0;
  std::vector<NodeId> parent;           ///< parent[i]; parent[root] == root
  std::vector<std::uint32_t> depth;     ///< layer index; decreases toward root
};

/// Builds the schedule for `kind` over `topology`. kAuto resolves to the
/// first shape the topology supports; an explicitly requested shape the
/// topology cannot carry (no hub, missing path/heap edges) is a checked
/// configuration error. The topology must be connected.
[[nodiscard]] TreeSchedule build_tree_schedule(const Topology& topology,
                                               TreeKind kind = TreeKind::kAuto);

}  // namespace pcf::net
