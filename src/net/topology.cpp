#include "net/topology.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

#include "support/check.hpp"

namespace pcf::net {
namespace {

using Edge = std::pair<NodeId, NodeId>;

Edge ordered(NodeId a, NodeId b) { return a < b ? Edge{a, b} : Edge{b, a}; }

}  // namespace

Topology Topology::build(std::size_t n, std::vector<Edge> edges, std::string name) {
  PCF_CHECK_MSG(n >= 1, "topology needs at least one node");
  // Normalize: undirected, simple, no self loops.
  for (auto& [a, b] : edges) {
    PCF_CHECK_MSG(a < n && b < n, "edge endpoint out of range in topology '" << name << "'");
    PCF_CHECK_MSG(a != b, "self loop in topology '" << name << "'");
    if (a > b) std::swap(a, b);
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Topology t;
  t.name_ = std::move(name);
  std::vector<std::size_t> deg(n, 0);
  for (const auto& [a, b] : edges) {
    ++deg[a];
    ++deg[b];
  }
  t.offsets_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) t.offsets_[i + 1] = t.offsets_[i] + deg[i];
  t.adjacency_.assign(t.offsets_[n], 0);
  std::vector<std::size_t> cursor(t.offsets_.begin(), t.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    t.adjacency_[cursor[a]++] = b;
    t.adjacency_[cursor[b]++] = a;
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::sort(t.adjacency_.begin() + static_cast<std::ptrdiff_t>(t.offsets_[i]),
              t.adjacency_.begin() + static_cast<std::ptrdiff_t>(t.offsets_[i + 1]));
  }
  return t;
}

std::span<const NodeId> Topology::neighbors(NodeId i) const noexcept {
  PCF_ASSERT(i < size());
  return {adjacency_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
}

std::size_t Topology::degree(NodeId i) const noexcept {
  PCF_ASSERT(i < size());
  return offsets_[i + 1] - offsets_[i];
}

bool Topology::has_edge(NodeId i, NodeId j) const noexcept {
  if (i >= size() || j >= size()) return false;
  const auto nb = neighbors(i);
  return std::binary_search(nb.begin(), nb.end(), j);
}

std::vector<Edge> Topology::edges() const {
  std::vector<Edge> out;
  out.reserve(edge_count());
  for (NodeId i = 0; i < size(); ++i) {
    for (NodeId j : neighbors(i)) {
      if (i < j) out.emplace_back(i, j);
    }
  }
  return out;
}

Topology Topology::bus(std::size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n > 0 ? n - 1 : 0);
  for (NodeId i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return build(n, std::move(edges), "bus:" + std::to_string(n));
}

Topology Topology::ring(std::size_t n) {
  PCF_CHECK_MSG(n >= 3, "ring needs at least 3 nodes");
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId i = 0; i < n; ++i) edges.push_back(ordered(i, static_cast<NodeId>((i + 1) % n)));
  return build(n, std::move(edges), "ring:" + std::to_string(n));
}

Topology Topology::grid2d(std::size_t rows, std::size_t cols, bool wrap) {
  PCF_CHECK_MSG(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  const std::size_t n = rows * cols;
  auto id = [cols](std::size_t r, std::size_t c) { return static_cast<NodeId>(r * cols + c); };
  std::vector<Edge> edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) edges.push_back({id(r, c), id(r + 1, c)});
      if (wrap && cols > 2 && c == cols - 1) edges.push_back(ordered(id(r, c), id(r, 0)));
      if (wrap && rows > 2 && r == rows - 1) edges.push_back(ordered(id(r, c), id(0, c)));
    }
  }
  const std::string base = wrap ? "torus2d:" : "grid:";
  return build(n, std::move(edges), base + std::to_string(rows) + "x" + std::to_string(cols));
}

Topology Topology::torus3d(std::size_t x, std::size_t y, std::size_t z) {
  PCF_CHECK_MSG(x >= 1 && y >= 1 && z >= 1, "torus needs positive dimensions");
  const std::size_t n = x * y * z;
  auto id = [y, z](std::size_t a, std::size_t b, std::size_t c) {
    return static_cast<NodeId>((a * y + b) * z + c);
  };
  std::vector<Edge> edges;
  auto link_dim = [&](std::size_t len, auto&& make) {
    // Wrap-around edge only when the dimension has length > 2, otherwise the
    // wrap edge duplicates the mesh edge (and length 1 has no edge at all).
    for (std::size_t i = 0; i + 1 < len; ++i) make(i, i + 1);
    if (len > 2) make(len - 1, 0);
  };
  for (std::size_t a = 0; a < x; ++a) {
    for (std::size_t b = 0; b < y; ++b) {
      link_dim(z, [&](std::size_t c0, std::size_t c1) {
        edges.push_back(ordered(id(a, b, c0), id(a, b, c1)));
      });
    }
  }
  for (std::size_t a = 0; a < x; ++a) {
    for (std::size_t c = 0; c < z; ++c) {
      link_dim(y, [&](std::size_t b0, std::size_t b1) {
        edges.push_back(ordered(id(a, b0, c), id(a, b1, c)));
      });
    }
  }
  for (std::size_t b = 0; b < y; ++b) {
    for (std::size_t c = 0; c < z; ++c) {
      link_dim(x, [&](std::size_t a0, std::size_t a1) {
        edges.push_back(ordered(id(a0, b, c), id(a1, b, c)));
      });
    }
  }
  return build(n, std::move(edges),
               "torus3d:" + std::to_string(x) + "x" + std::to_string(y) + "x" + std::to_string(z));
}

Topology Topology::hypercube(std::size_t dims) {
  PCF_CHECK_MSG(dims >= 1 && dims < 31, "hypercube dimension out of range");
  const std::size_t n = std::size_t{1} << dims;
  std::vector<Edge> edges;
  edges.reserve(n * dims / 2);
  for (NodeId i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dims; ++d) {
      const NodeId j = i ^ static_cast<NodeId>(1u << d);
      if (i < j) edges.push_back({i, j});
    }
  }
  return build(n, std::move(edges), "hypercube:" + std::to_string(dims));
}

Topology Topology::complete(std::size_t n) {
  PCF_CHECK_MSG(n >= 2, "complete graph needs at least 2 nodes");
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) edges.push_back({i, j});
  }
  return build(n, std::move(edges), "complete:" + std::to_string(n));
}

Topology Topology::star(std::size_t n) {
  PCF_CHECK_MSG(n >= 2, "star needs at least 2 nodes");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (NodeId i = 1; i < n; ++i) edges.push_back({0, i});
  return build(n, std::move(edges), "star:" + std::to_string(n));
}

Topology Topology::binary_tree(std::size_t n) {
  PCF_CHECK_MSG(n >= 1, "tree needs at least one node");
  std::vector<Edge> edges;
  for (NodeId i = 1; i < n; ++i) edges.push_back({(i - 1) / 2, i});
  return build(n, std::move(edges), "tree:" + std::to_string(n));
}

Topology Topology::random_regular(std::size_t n, std::size_t degree, Rng& rng) {
  PCF_CHECK_MSG(degree >= 1 && degree < n, "regular graph degree out of range");
  PCF_CHECK_MSG((n * degree) % 2 == 0, "n*degree must be even for a regular graph");
  // Configuration model with edge-swap repair. A straight pairing of the
  // shuffled stub list contains a self loop or multi edge with probability
  // approaching 1 as n*degree^2 grows, so rejecting the whole attempt (as this
  // generator originally did) never terminates at scale. Keep the good pairs
  // and splice each bad one into a randomly chosen accepted edge instead:
  // bad (a,b) + accepted (u,v) -> (a,u) + (b,v), which preserves the degree
  // sequence exactly. A collision-free first shuffle takes the repair-free
  // path and yields the same graph the rejection sampler did.
  for (int attempt = 0; attempt < 200; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(n * degree);
    for (NodeId i = 0; i < n; ++i) {
      for (std::size_t d = 0; d < degree; ++d) stubs.push_back(i);
    }
    rng.shuffle(std::span<NodeId>(stubs));
    std::set<Edge> seen;
    std::vector<Edge> edges;
    edges.reserve(stubs.size() / 2);
    std::vector<NodeId> bad;
    for (std::size_t k = 0; k < stubs.size(); k += 2) {
      const NodeId a = stubs[k];
      const NodeId b = stubs[k + 1];
      if (a != b && seen.insert(ordered(a, b)).second) {
        edges.push_back(ordered(a, b));
      } else {
        bad.push_back(a);
        bad.push_back(b);
      }
    }
    bool ok = !edges.empty() || bad.empty();
    std::size_t swap_budget = 64 + 16 * bad.size();
    for (std::size_t k = 0; ok && k + 1 < bad.size(); k += 2) {
      const NodeId a = bad[k];
      const NodeId b = bad[k + 1];
      bool placed = false;
      while (swap_budget > 0 && !placed) {
        --swap_budget;
        const std::size_t pick = rng.below(edges.size());
        const NodeId u = edges[pick].first;
        const NodeId v = edges[pick].second;
        const Edge au = ordered(a, u);
        const Edge bv = ordered(b, v);
        if (a == u || b == v || au == bv || seen.count(au) != 0 || seen.count(bv) != 0) {
          continue;
        }
        seen.erase(edges[pick]);
        seen.insert(au);
        seen.insert(bv);
        edges[pick] = au;
        edges.push_back(bv);
        placed = true;
      }
      ok = placed;
    }
    if (ok) {
      std::sort(edges.begin(), edges.end());
      Topology t = build(n, std::move(edges),
                         "regular:" + std::to_string(n) + ":" + std::to_string(degree));
      if (t.is_connected()) return t;
    }
  }
  PCF_CHECK_MSG(false, "random_regular failed to generate a simple connected graph");
  __builtin_unreachable();
}

Topology Topology::erdos_renyi(std::size_t n, double p, Rng& rng) {
  PCF_CHECK_MSG(n >= 2, "er graph needs at least 2 nodes");
  PCF_CHECK_MSG(p >= 0.0 && p <= 1.0, "er probability out of [0,1]");
  std::vector<Edge> edges;
  // Random spanning tree (random attachment order) guarantees connectivity.
  std::vector<NodeId> order(n);
  for (NodeId i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(std::span<NodeId>(order));
  for (std::size_t i = 1; i < n; ++i) {
    const NodeId parent = order[rng.below(i)];
    edges.push_back(ordered(order[i], parent));
  }
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.chance(p)) edges.push_back({i, j});
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", p);
  return build(n, std::move(edges), "er:" + std::to_string(n) + ":" + buf);
}

Topology Topology::watts_strogatz(std::size_t n, std::size_t k, double beta, Rng& rng) {
  PCF_CHECK_MSG(n >= 4, "small world needs at least 4 nodes");
  PCF_CHECK_MSG(k >= 2 && k % 2 == 0 && k < n, "small world degree k must be even and < n");
  PCF_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "rewiring probability out of [0,1]");
  // Ring lattice: node i connects to i±1 … i±k/2.
  std::set<Edge> edge_set;
  for (NodeId i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k / 2; ++d) {
      edge_set.insert(ordered(i, static_cast<NodeId>((i + d) % n)));
    }
  }
  // Rewire each lattice edge's far endpoint with probability beta. A rewiring
  // is skipped if it would create a self loop or duplicate, and the ±1 ring
  // edges are kept so the graph remains connected (documented deviation from
  // the textbook model, which can disconnect).
  std::vector<Edge> edges(edge_set.begin(), edge_set.end());
  for (auto& [a, b] : edges) {
    const bool is_ring_edge = (b == (a + 1) % n) || (a == (b + 1) % n);
    if (is_ring_edge || !rng.chance(beta)) continue;
    const auto c = static_cast<NodeId>(rng.below(n));
    const Edge candidate = ordered(a, c);
    if (c == a || c == b || edge_set.count(candidate) != 0) continue;
    edge_set.erase(ordered(a, b));
    edge_set.insert(candidate);
    b = c;  // keep the local copy consistent (not strictly needed)
  }
  std::vector<Edge> final_edges(edge_set.begin(), edge_set.end());
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", beta);
  return build(n, std::move(final_edges),
               "smallworld:" + std::to_string(n) + ":" + std::to_string(k) + ":" + buf);
}

Topology Topology::barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  PCF_CHECK_MSG(m >= 1, "attachment count m must be positive");
  PCF_CHECK_MSG(n > m + 1, "need more nodes than the seed clique");
  std::vector<Edge> edges;
  // Seed: a clique of m+1 nodes.
  for (NodeId i = 0; i <= m; ++i) {
    for (NodeId j = i + 1; j <= m; ++j) edges.push_back({i, j});
  }
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // endpoint occurrence in `attachment` is one unit of degree.
  std::vector<NodeId> attachment;
  for (const auto& [a, b] : edges) {
    attachment.push_back(a);
    attachment.push_back(b);
  }
  for (NodeId v = static_cast<NodeId>(m + 1); v < n; ++v) {
    std::set<NodeId> targets;
    while (targets.size() < m) {
      targets.insert(attachment[static_cast<std::size_t>(rng.below(attachment.size()))]);
    }
    for (const NodeId t : targets) {
      edges.push_back(ordered(v, t));
      attachment.push_back(v);
      attachment.push_back(t);
    }
  }
  return build(n, std::move(edges), "ba:" + std::to_string(n) + ":" + std::to_string(m));
}

Topology Topology::from_edges(std::size_t n, std::span<const Edge> edges, std::string name) {
  return build(n, std::vector<Edge>(edges.begin(), edges.end()), std::move(name));
}

std::string Topology::to_dot() const {
  std::string out = "graph \"" + name_ + "\" {\n";
  for (NodeId i = 0; i < size(); ++i) {
    for (NodeId j : neighbors(i)) {
      if (i < j) {
        out += "  " + std::to_string(i) + " -- " + std::to_string(j) + ";\n";
      }
    }
  }
  out += "}\n";
  return out;
}

std::vector<std::size_t> Topology::bfs_distances(NodeId from) const {
  PCF_CHECK_MSG(from < size(), "bfs start node out of range");
  constexpr auto kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(size(), kInf);
  std::deque<NodeId> queue{from};
  dist[from] = 0;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : neighbors(u)) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

bool Topology::is_connected() const {
  const auto dist = bfs_distances(0);
  return std::none_of(dist.begin(), dist.end(), [](std::size_t d) {
    return d == std::numeric_limits<std::size_t>::max();
  });
}

std::size_t Topology::diameter() const {
  std::size_t best = 0;
  for (NodeId i = 0; i < size(); ++i) {
    const auto dist = bfs_distances(i);
    for (std::size_t d : dist) {
      PCF_CHECK_MSG(d != std::numeric_limits<std::size_t>::max(),
                    "diameter undefined: graph is disconnected");
      best = std::max(best, d);
    }
  }
  return best;
}

Topology Topology::parse(const std::string& spec, Rng& rng) {
  const auto colon = spec.find(':');
  PCF_CHECK_MSG(colon != std::string::npos, "topology spec '" << spec << "' missing ':'");
  const std::string kind = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);
  auto split = [](const std::string& s, char sep) {
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
      const auto pos = s.find(sep, start);
      parts.push_back(s.substr(start, pos - start));
      if (pos == std::string::npos) break;
      start = pos + 1;
    }
    return parts;
  };
  auto to_n = [&](const std::string& s) {
    char* end = nullptr;
    const auto v = std::strtoull(s.c_str(), &end, 10);
    PCF_CHECK_MSG(end && *end == '\0' && !s.empty(), "bad number '" << s << "' in topology spec");
    return static_cast<std::size_t>(v);
  };

  if (kind == "bus") return bus(to_n(rest));
  if (kind == "ring") return ring(to_n(rest));
  if (kind == "complete") return complete(to_n(rest));
  if (kind == "star") return star(to_n(rest));
  if (kind == "tree") return binary_tree(to_n(rest));
  if (kind == "hypercube") return hypercube(to_n(rest));
  if (kind == "grid" || kind == "torus2d") {
    const auto parts = split(rest, 'x');
    PCF_CHECK_MSG(parts.size() == 2, "grid spec wants RxC");
    return grid2d(to_n(parts[0]), to_n(parts[1]), kind == "torus2d");
  }
  if (kind == "torus3d") {
    const auto parts = split(rest, 'x');
    if (parts.size() == 1) {
      const std::size_t l = to_n(parts[0]);
      return torus3d(l, l, l);
    }
    PCF_CHECK_MSG(parts.size() == 3, "torus3d spec wants L or XxYxZ");
    return torus3d(to_n(parts[0]), to_n(parts[1]), to_n(parts[2]));
  }
  if (kind == "regular") {
    const auto parts = split(rest, ':');
    PCF_CHECK_MSG(parts.size() == 2, "regular spec wants N:D");
    return random_regular(to_n(parts[0]), to_n(parts[1]), rng);
  }
  if (kind == "er") {
    const auto parts = split(rest, ':');
    PCF_CHECK_MSG(parts.size() == 2, "er spec wants N:P");
    return erdos_renyi(to_n(parts[0]), std::strtod(parts[1].c_str(), nullptr), rng);
  }
  if (kind == "smallworld") {
    const auto parts = split(rest, ':');
    PCF_CHECK_MSG(parts.size() == 3, "smallworld spec wants N:K:BETA");
    return watts_strogatz(to_n(parts[0]), to_n(parts[1]),
                          std::strtod(parts[2].c_str(), nullptr), rng);
  }
  if (kind == "ba") {
    const auto parts = split(rest, ':');
    PCF_CHECK_MSG(parts.size() == 2, "ba spec wants N:M");
    return barabasi_albert(to_n(parts[0]), to_n(parts[1]), rng);
  }
  PCF_CHECK_MSG(false, "unknown topology kind '" << kind << "'");
  __builtin_unreachable();
}

}  // namespace pcf::net
