#include "net/transport.hpp"

#include "core/state_io.hpp"
#include "support/binio.hpp"

namespace pcf::net {

namespace {

/// FNV-1a over raw bytes (the checkpoint layer's word-wise variant does not
/// fit a byte stream whose length is not a multiple of 8).
[[nodiscard]] std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] BinaryWriter begin_frame(FrameKind kind) {
  BinaryWriter w;
  w.raw(kFrameMagic.data(), kFrameMagic.size());
  w.u32(kTransportVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  return w;
}

[[nodiscard]] std::string seal_frame(BinaryWriter&& w) {
  const std::uint64_t checksum = fnv1a(w.buffer());
  w.u64(checksum);
  return std::move(w).take();
}

}  // namespace

std::string encode_frame(const DataFrame& frame) {
  BinaryWriter w = begin_frame(FrameKind::kData);
  w.u32(frame.from);
  w.u32(frame.to);
  w.u64(frame.seq);
  core::write_packet(w, frame.packet);
  return seal_frame(std::move(w));
}

std::string encode_frame(const HeartbeatFrame& frame) {
  BinaryWriter w = begin_frame(FrameKind::kHeartbeat);
  w.u32(frame.shard);
  w.u32(frame.epoch);
  w.u64(frame.seq);
  return seal_frame(std::move(w));
}

Frame decode_frame(std::string_view bytes) {
  // Checksum first: it covers the header too, so a bit flip anywhere —
  // including inside the magic or version — is reported as corruption, and
  // only an intact frame's version field is trusted for the skew check.
  if (bytes.size() < kFrameMagic.size() + 4 + 1 + 8) {
    throw TransportError("transport: frame too short");
  }
  const std::string_view body = bytes.substr(0, bytes.size() - 8);
  try {
    BinaryReader trailer(bytes.substr(bytes.size() - 8));
    if (trailer.u64() != fnv1a(body)) {
      throw TransportError("transport: checksum mismatch");
    }

    BinaryReader r(body);
    if (r.raw(kFrameMagic.size()) != kFrameMagic) {
      throw TransportError("transport: bad frame magic");
    }
    const std::uint32_t version = r.u32();
    if (version != kTransportVersion) {
      throw TransportError("transport: version skew (frame v" + std::to_string(version) +
                           ", this build speaks v" + std::to_string(kTransportVersion) + ")");
    }

    Frame frame;
    const std::uint8_t kind = r.u8();
    switch (kind) {
      case static_cast<std::uint8_t>(FrameKind::kData):
        frame.kind = FrameKind::kData;
        frame.data.from = r.u32();
        frame.data.to = r.u32();
        frame.data.seq = r.u64();
        frame.data.packet = core::read_packet(r);
        break;
      case static_cast<std::uint8_t>(FrameKind::kHeartbeat):
        frame.kind = FrameKind::kHeartbeat;
        frame.heartbeat.shard = r.u32();
        frame.heartbeat.epoch = r.u32();
        frame.heartbeat.seq = r.u64();
        break;
      default:
        throw TransportError("transport: unknown frame kind");
    }
    r.expect_end();
    return frame;
  } catch (const BinioError& e) {
    // Truncation or malformed nested fields (e.g. packet mass dimension).
    throw TransportError(std::string("transport: ") + e.what());
  }
}

}  // namespace pcf::net
