#include "net/tree_schedule.hpp"

#include <limits>
#include <optional>

#include "support/check.hpp"

namespace pcf::net {

namespace {

constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();

/// Smallest-id node adjacent to every other node, if one exists.
std::optional<NodeId> find_hub(const Topology& t) {
  for (NodeId i = 0; i < t.size(); ++i) {
    if (t.degree(i) == t.size() - 1) return i;
  }
  return std::nullopt;
}

bool has_id_order_path(const Topology& t) {
  for (NodeId i = 0; i + 1 < t.size(); ++i) {
    if (!t.has_edge(i, i + 1)) return false;
  }
  return true;
}

bool has_heap_edges(const Topology& t) {
  for (NodeId i = 1; i < t.size(); ++i) {
    if (!t.has_edge(i, (i - 1) / 2)) return false;
  }
  return true;
}

/// Parents from the depth map: each non-root attaches to the (depth, id)-
/// minimal neighbor of strictly smaller depth. This is the SAME rule the
/// correction reducer applies at runtime over its live neighbor set, so the
/// statically published tree and the fault-free runtime tree coincide
/// exactly — including on topologies with chord edges that skip layers.
void derive_parents(const Topology& t, TreeSchedule& s) {
  s.parent.assign(t.size(), s.root);
  for (NodeId i = 0; i < t.size(); ++i) {
    if (i == s.root) continue;
    NodeId best = i;
    std::uint32_t best_depth = s.depth[i];
    for (const NodeId j : t.neighbors(i)) {  // sorted: first hit wins ties by id
      if (s.depth[j] < best_depth) {
        best = j;
        best_depth = s.depth[j];
      }
    }
    PCF_CHECK_MSG(best != i, "tree schedule: node " << i << " has no upward neighbor");
    s.parent[i] = best;
  }
}

TreeSchedule make_star(const Topology& t, NodeId hub) {
  TreeSchedule s;
  s.kind = TreeKind::kStar;
  s.root = hub;
  s.depth.assign(t.size(), 1);
  s.depth[hub] = 0;
  derive_parents(t, s);
  return s;
}

TreeSchedule make_chain(const Topology& t) {
  TreeSchedule s;
  s.kind = TreeKind::kChain;
  s.root = 0;
  s.depth.resize(t.size());
  for (NodeId i = 0; i < t.size(); ++i) s.depth[i] = i;
  derive_parents(t, s);
  return s;
}

TreeSchedule make_binary(const Topology& t) {
  TreeSchedule s;
  s.kind = TreeKind::kBinary;
  s.root = 0;
  s.depth.resize(t.size());
  s.depth[0] = 0;
  for (NodeId i = 1; i < t.size(); ++i) s.depth[i] = s.depth[(i - 1) / 2] + 1;
  derive_parents(t, s);
  return s;
}

TreeSchedule make_bfs(const Topology& t) {
  TreeSchedule s;
  s.kind = TreeKind::kBfs;
  s.root = 0;
  s.depth.assign(t.size(), kUnvisited);
  std::vector<NodeId> queue;
  queue.reserve(t.size());
  queue.push_back(0);
  s.depth[0] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const NodeId i = queue[head];
    for (const NodeId j : t.neighbors(i)) {
      if (s.depth[j] != kUnvisited) continue;
      s.depth[j] = s.depth[i] + 1;
      queue.push_back(j);
    }
  }
  for (NodeId i = 0; i < t.size(); ++i) {
    PCF_CHECK_MSG(s.depth[i] != kUnvisited, "tree schedule requires a connected topology");
  }
  derive_parents(t, s);
  return s;
}

}  // namespace

std::string_view to_string(TreeKind k) noexcept {
  switch (k) {
    case TreeKind::kAuto: return "auto";
    case TreeKind::kChain: return "chain";
    case TreeKind::kBinary: return "binary";
    case TreeKind::kStar: return "star";
    case TreeKind::kBfs: return "bfs";
  }
  return "?";
}

TreeKind parse_tree_kind(std::string_view name) {
  if (name == "auto") return TreeKind::kAuto;
  if (name == "chain") return TreeKind::kChain;
  if (name == "binary") return TreeKind::kBinary;
  if (name == "star") return TreeKind::kStar;
  if (name == "bfs") return TreeKind::kBfs;
  PCF_CHECK_MSG(false, "unknown tree kind '" << name << "' (want: auto|chain|binary|star|bfs)");
  __builtin_unreachable();
}

TreeSchedule build_tree_schedule(const Topology& topology, TreeKind kind) {
  PCF_CHECK_MSG(topology.size() > 0, "tree schedule over an empty topology");
  switch (kind) {
    case TreeKind::kAuto: {
      if (const auto hub = find_hub(topology)) return make_star(topology, *hub);
      if (has_id_order_path(topology)) return make_chain(topology);
      if (has_heap_edges(topology)) return make_binary(topology);
      return make_bfs(topology);
    }
    case TreeKind::kStar: {
      const auto hub = find_hub(topology);
      PCF_CHECK_MSG(hub.has_value(),
                    "star tree schedule: topology '" << topology.name() << "' has no hub");
      return make_star(topology, *hub);
    }
    case TreeKind::kChain:
      PCF_CHECK_MSG(has_id_order_path(topology), "chain tree schedule: topology '"
                                                     << topology.name()
                                                     << "' has no id-order path");
      return make_chain(topology);
    case TreeKind::kBinary:
      PCF_CHECK_MSG(has_heap_edges(topology), "binary tree schedule: topology '"
                                                  << topology.name()
                                                  << "' lacks heap-order edges");
      return make_binary(topology);
    case TreeKind::kBfs:
      return make_bfs(topology);
  }
  PCF_CHECK_MSG(false, "unhandled tree kind");
  __builtin_unreachable();
}

}  // namespace pcf::net
