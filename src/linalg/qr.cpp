#include "linalg/qr.hpp"

#include <cmath>

namespace pcf::linalg {

QrResult mgs_qr(const Matrix& v) {
  const std::size_t n = v.rows();
  const std::size_t m = v.cols();
  PCF_CHECK_MSG(n >= m, "mgs_qr requires rows >= cols");
  QrResult out{v, Matrix(m, m)};
  Matrix& q = out.q;
  Matrix& r = out.r;
  for (std::size_t j = 0; j < m; ++j) {
    double norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm2 += q(i, j) * q(i, j);
    const double rjj = std::sqrt(norm2);
    PCF_CHECK_MSG(rjj > 0.0, "mgs_qr: column " << j << " is numerically zero");
    r(j, j) = rjj;
    for (std::size_t i = 0; i < n; ++i) q(i, j) /= rjj;
    for (std::size_t k = j + 1; k < m; ++k) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) dot += q(i, j) * q(i, k);
      r(j, k) = dot;
      for (std::size_t i = 0; i < n; ++i) q(i, k) -= dot * q(i, j);
    }
  }
  return out;
}

QrResult householder_qr(const Matrix& v) {
  const std::size_t n = v.rows();
  const std::size_t m = v.cols();
  PCF_CHECK_MSG(n >= m, "householder_qr requires rows >= cols");
  Matrix a = v;                      // will become R in its upper triangle
  std::vector<std::vector<double>> vs;  // Householder vectors
  vs.reserve(m);
  for (std::size_t k = 0; k < m; ++k) {
    // Build the Householder vector for column k.
    double norm2 = 0.0;
    for (std::size_t i = k; i < n; ++i) norm2 += a(i, k) * a(i, k);
    const double norm = std::sqrt(norm2);
    std::vector<double> w(n, 0.0);
    const double alpha = a(k, k) >= 0 ? -norm : norm;
    double vnorm2 = 0.0;
    w[k] = a(k, k) - alpha;
    for (std::size_t i = k + 1; i < n; ++i) w[i] = a(i, k);
    for (std::size_t i = k; i < n; ++i) vnorm2 += w[i] * w[i];
    if (vnorm2 > 0.0) {
      // Apply I − 2wwᵀ/(wᵀw) to the trailing block.
      for (std::size_t j = k; j < m; ++j) {
        double dot = 0.0;
        for (std::size_t i = k; i < n; ++i) dot += w[i] * a(i, j);
        const double scale = 2.0 * dot / vnorm2;
        for (std::size_t i = k; i < n; ++i) a(i, j) -= scale * w[i];
      }
    }
    vs.push_back(std::move(w));
  }
  QrResult out{Matrix(n, m), Matrix(m, m)};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) out.r(i, j) = a(i, j);
  }
  // Q = H_0 H_1 … H_{m-1} · [I_m; 0] — accumulate by applying reflectors in
  // reverse to the thin identity.
  Matrix q(n, m);
  for (std::size_t j = 0; j < m; ++j) q(j, j) = 1.0;
  for (std::size_t k = m; k-- > 0;) {
    const auto& w = vs[k];
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < n; ++i) vnorm2 += w[i] * w[i];
    if (vnorm2 == 0.0) continue;
    for (std::size_t j = 0; j < m; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < n; ++i) dot += w[i] * q(i, j);
      const double scale = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < n; ++i) q(i, j) -= scale * w[i];
    }
  }
  out.q = std::move(q);
  return out;
}

}  // namespace pcf::linalg
