// Sequential reference QR factorizations.
//
// Used as ground truth for the distributed dmGS: modified Gram-Schmidt is the
// algorithm dmGS distributes (so dmGS in a perfect network must match it),
// and Householder QR provides an independent, backward-stable reference.
#pragma once

#include "linalg/matrix.hpp"

namespace pcf::linalg {

struct QrResult {
  Matrix q;  ///< n×m with orthonormal columns
  Matrix r;  ///< m×m upper triangular
};

/// Modified Gram-Schmidt QR (Golub & Van Loan, Alg. 5.2.6). Requires
/// n ≥ m and numerically full column rank.
[[nodiscard]] QrResult mgs_qr(const Matrix& v);

/// Householder QR (thin factorization).
[[nodiscard]] QrResult householder_qr(const Matrix& v);

}  // namespace pcf::linalg
