// Sequential reference eigensolver for symmetric matrices.
//
// Classical cyclic Jacobi: rotate away the largest off-diagonal entries until
// the matrix is numerically diagonal. Slow (O(n³) per sweep) but simple and
// extremely accurate — exactly what a ground-truth oracle for the distributed
// eigensolver should be.
#pragma once

#include "linalg/matrix.hpp"
#include "net/topology.hpp"

namespace pcf::linalg {

struct EigenDecomposition {
  /// Eigenvalues in descending order.
  std::vector<double> values;
  /// Column k of `vectors` is the eigenvector for values[k] (orthonormal).
  Matrix vectors;
};

/// Jacobi eigenvalue iteration. Requires a symmetric matrix; throws on
/// asymmetry beyond `symmetry_tol`.
[[nodiscard]] EigenDecomposition jacobi_eigen(const Matrix& symmetric, double tol = 1e-13,
                                              std::size_t max_sweeps = 64,
                                              double symmetry_tol = 1e-12);

/// Adjacency matrix of a topology (A_ij = 1 iff edge {i,j}).
[[nodiscard]] Matrix adjacency_matrix(const net::Topology& topology);

/// Combinatorial Laplacian L = D − A.
[[nodiscard]] Matrix laplacian_matrix(const net::Topology& topology);

}  // namespace pcf::linalg
