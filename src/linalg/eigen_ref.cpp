#include "linalg/eigen_ref.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pcf::linalg {

EigenDecomposition jacobi_eigen(const Matrix& symmetric, double tol, std::size_t max_sweeps,
                                double symmetry_tol) {
  const std::size_t n = symmetric.rows();
  PCF_CHECK_MSG(symmetric.cols() == n, "eigen decomposition needs a square matrix");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      PCF_CHECK_MSG(std::fabs(symmetric(i, j) - symmetric(j, i)) <= symmetry_tol,
                    "jacobi_eigen: matrix is not symmetric at (" << i << "," << j << ")");
    }
  }

  Matrix a = symmetric;
  Matrix v = Matrix::identity(n);
  const double scale = std::max(1.0, a.max_abs());

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off = std::max(off, std::fabs(a(p, q)));
    }
    if (off <= tol * scale) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        // The rotation angle that annihilates a(p,q).
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return a(x, x) > a(y, y); });

  EigenDecomposition result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    result.values[k] = a(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) result.vectors(i, k) = v(i, order[k]);
  }
  return result;
}

Matrix adjacency_matrix(const net::Topology& topology) {
  Matrix a(topology.size(), topology.size());
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    for (const net::NodeId j : topology.neighbors(i)) a(i, j) = 1.0;
  }
  return a;
}

Matrix laplacian_matrix(const net::Topology& topology) {
  Matrix l(topology.size(), topology.size());
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    l(i, i) = static_cast<double>(topology.degree(i));
    for (const net::NodeId j : topology.neighbors(i)) l(i, j) = -1.0;
  }
  return l;
}

}  // namespace pcf::linalg
