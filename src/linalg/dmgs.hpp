// dmGS — fully distributed modified Gram-Schmidt QR factorization
// (Straková, Gansterer, Zemen — PPAM 2011; Section IV of the paper).
//
// The matrix V ∈ R^{n×m} (n ≥ N) is distributed row-wise over the N nodes of
// a topology (node i owns rows {i, i+N, …}). Modified Gram-Schmidt runs as
// usual, except that every column norm and every dot product is computed by a
// *distributed reduction*: each node contributes the partial sum over its
// rows, a gossip reduction spreads the global value, and each node continues
// with its OWN estimate of the result. Nodes therefore hold slightly
// different R matrices; the factorization error measures V against Q combined
// with each row owner's R — exactly the quantity the paper's Fig. 8 plots.
//
// The m−j−1 dot products of elimination step j are batched into ⌈(m−j−1)/16⌉
// vector-payload reductions, which is what the iterative nature of gossip
// buys at the matrix level (one reduction run amortizes many scalars).
#pragma once

#include "core/reducer.hpp"
#include "linalg/matrix.hpp"
#include "net/topology.hpp"
#include "sim/reduce.hpp"

namespace pcf::linalg {

struct DmgsOptions {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  core::ReducerConfig reducer;
  std::uint64_t seed = 1;
  /// Target accuracy ε per reduction (the paper uses 1e-15).
  double reduction_accuracy = 1e-15;
  /// Iteration cap per reduction — terminates reductions which never reach ε
  /// (for PF at scale, this cap is what bounds the error in Fig. 8).
  std::size_t max_rounds_per_reduction = 1500;
  /// Faults injected into EVERY reduction (e.g. message loss); link failures
  /// listed here fire within each reduction at the given round.
  sim::FaultPlan faults;
};

struct DmgsResult {
  Matrix q;                    ///< assembled from the row owners
  std::vector<Matrix> r;       ///< per-node m×m upper-triangular estimates
  std::size_t reductions = 0;  ///< number of gossip reductions executed
  std::size_t total_rounds = 0;
  std::size_t reductions_hit_cap = 0;  ///< reductions terminated by the cap

  /// The paper's Fig. 8 error, taken as the worst case over nodes:
  /// max_j ‖V − Q·R_j‖∞ / ‖V‖∞. Every node ends the factorization with its
  /// own R estimate; inaccurate reductions show up as disagreement between
  /// those estimates, which is exactly what this measures.
  [[nodiscard]] double factorization_error(const Matrix& v) const;
  /// ‖V − Q·R_owner‖∞ / ‖V‖∞ with each row reconstructed from its OWNER's R.
  /// Near machine precision by construction (each node's row transformations
  /// are exactly invertible with its own coefficients) — a self-consistency
  /// check, not an accuracy measure.
  [[nodiscard]] double self_consistency_error(const Matrix& v, const net::Topology& topology) const;
  /// ‖QᵀQ − I‖∞ of the assembled Q.
  [[nodiscard]] double orthogonality_error() const;
  /// Largest elementwise disagreement between any two nodes' R.
  [[nodiscard]] double r_disagreement() const;
};

/// Factorizes V distributed over `topology`. Requires v.rows() >= topology
/// size and v.cols() >= 1.
[[nodiscard]] DmgsResult dmgs(const net::Topology& topology, const Matrix& v,
                              const DmgsOptions& options);

}  // namespace pcf::linalg
