#include "linalg/matrix.hpp"

#include <cmath>

namespace pcf::linalg {

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.uniform(-1.0, 1.0);
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  PCF_CHECK_MSG(a.cols() == b.rows(), "matmul dimension mismatch");
  Matrix out(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
    }
  }
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  PCF_CHECK_MSG(a.rows() == b.rows() && a.cols() == b.cols(), "subtraction shape mismatch");
  Matrix out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) out(i, j) = a(i, j) - b(i, j);
  }
  return out;
}

double Matrix::norm_inf() const noexcept {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (double v : row(r)) sum += std::fabs(v);
    best = std::max(best, sum);
  }
  return best;
}

double Matrix::norm_fro() const noexcept {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Matrix::max_abs() const noexcept {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::fabs(v));
  return best;
}

double factorization_error(const Matrix& v, const Matrix& q, const Matrix& r) {
  const Matrix qr = q * r;
  return (v - qr).norm_inf() / v.norm_inf();
}

double orthogonality_error(const Matrix& q) {
  const Matrix gram = q.transposed() * q;
  return (gram - Matrix::identity(q.cols())).norm_inf();
}

}  // namespace pcf::linalg
