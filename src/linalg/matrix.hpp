// Dense row-major matrix and the norms used by the QR experiments.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pcf::linalg {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Uniform(-1, 1) random matrix (the paper factorizes random matrices).
  [[nodiscard]] static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng);
  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    PCF_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    PCF_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    PCF_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    PCF_ASSERT(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] Matrix transposed() const;
  friend Matrix operator*(const Matrix& a, const Matrix& b);
  friend Matrix operator-(const Matrix& a, const Matrix& b);

  /// Matrix infinity norm: maximum absolute row sum (‖·‖∞ in the paper).
  [[nodiscard]] double norm_inf() const noexcept;
  /// Frobenius norm.
  [[nodiscard]] double norm_fro() const noexcept;
  /// Largest absolute entry.
  [[nodiscard]] double max_abs() const noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// ‖V − QR‖∞ / ‖V‖∞ — the paper's relative factorization error (Fig. 8).
[[nodiscard]] double factorization_error(const Matrix& v, const Matrix& q, const Matrix& r);

/// ‖QᵀQ − I‖∞ — loss of orthogonality.
[[nodiscard]] double orthogonality_error(const Matrix& q);

}  // namespace pcf::linalg
