// Distributed eigensolver for network matrices — gossip-based orthogonal
// iteration (the paper's companion application, reference [9]: Straková &
// Gansterer, "A Distributed Eigensolver for Loosely Coupled Networks").
//
// Setting: a symmetric matrix M whose sparsity pattern matches the
// communication topology (M_ij ≠ 0 only for neighbors j and the diagonal) —
// e.g. the network's adjacency or Laplacian matrix. Node i owns row i of the
// iterate Y ∈ R^{n×k}. One orthogonal-iteration step is then fully
// distributed:
//
//   1. Z = M·Y        — node i needs only its NEIGHBORS' rows (one local
//                       exchange round, no global communication);
//   2. Y = orth(Z)    — dmGS: every norm and dot product is a gossip
//                       reduction (push-cancel-flow by default);
//   3. λ_k = y_kᵀM y_k — Rayleigh quotients, one batched SUM reduction.
//
// Exactly as with dmGS, the fault tolerance of the reduction layer carries
// to the eigensolver: link failures and message loss inside any reduction
// only delay convergence. The accuracy story also carries: with PF
// reductions the attainable residual degrades with network size, with PCF it
// stays at the reduction target (bench/ablation_eigensolver).
#pragma once

#include "core/reducer.hpp"
#include "linalg/dmgs.hpp"
#include "linalg/matrix.hpp"
#include "net/topology.hpp"

namespace pcf::linalg {

/// A symmetric matrix with the topology's sparsity: per-node diagonal plus a
/// weight per undirected edge.
class NetworkMatrix {
 public:
  /// Dense constructor — validates symmetry and that off-diagonal nonzeros
  /// only appear on topology edges.
  NetworkMatrix(const net::Topology& topology, const Matrix& dense);

  /// M = A (adjacency): diagonal 0, edge weights 1. NOTE: bipartite graphs
  /// (hypercubes, paths, grids, trees…) have symmetric adjacency spectra
  /// (±λ₁ tie), on which power/orthogonal iteration cannot converge — use
  /// shifted_adjacency for those.
  [[nodiscard]] static NetworkMatrix adjacency(const net::Topology& topology);
  /// M = A + c·I: same eigenvectors as the adjacency, eigenvalues shifted by
  /// c so the dominant one is strictly largest in magnitude even on
  /// bipartite graphs. `c` defaults to max_degree + 1.
  [[nodiscard]] static NetworkMatrix shifted_adjacency(const net::Topology& topology,
                                                       double shift = 0.0);
  /// M = c·I − L (shifted negated Laplacian): its LARGEST eigenpairs are the
  /// Laplacian's SMALLEST — the constant vector and the Fiedler vector —
  /// which is what spectral partitioning needs. `c` defaults to
  /// 2·max_degree, keeping M's spectrum positive.
  [[nodiscard]] static NetworkMatrix shifted_laplacian(const net::Topology& topology,
                                                       double shift = 0.0);

  [[nodiscard]] const net::Topology& topology() const noexcept { return *topology_; }
  [[nodiscard]] double diagonal(net::NodeId i) const { return diagonal_.at(i); }
  [[nodiscard]] double edge_weight(net::NodeId i, net::NodeId j) const;

  /// Row i of M·Y computed from node i's and its neighbors' rows of Y.
  void apply_row(net::NodeId i, const Matrix& y, std::span<double> out) const;

  /// Densifies (for reference checks).
  [[nodiscard]] Matrix dense() const;

 private:
  NetworkMatrix() = default;
  const net::Topology* topology_ = nullptr;
  std::vector<double> diagonal_;
  /// Edge weights indexed like the topology's CSR adjacency (per directed
  /// half-edge, symmetric by construction).
  std::vector<std::vector<double>> weights_;  // weights_[i][slot] matches neighbors(i)[slot]
};

struct DistributedEigenOptions {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  std::uint64_t seed = 1;
  /// Number of dominant eigenpairs to compute (k ≤ core::kMaxDim).
  std::size_t num_pairs = 2;
  std::size_t iterations = 60;
  double reduction_accuracy = 1e-14;
  std::size_t max_rounds_per_reduction = 2500;
  sim::FaultPlan faults;  ///< injected into every reduction
};

struct DistributedEigenResult {
  /// Y ∈ R^{n×k}: row i is node i's component of the k dominant eigenvectors.
  Matrix eigenvectors;
  /// Rayleigh-quotient eigenvalue estimates as seen by node 0 (descending).
  std::vector<double> eigenvalues;
  /// Largest disagreement between any two nodes' eigenvalue estimates — the
  /// reduction-accuracy footprint (PF grows, PCF stays small).
  double eigenvalue_disagreement = 0.0;
  std::size_t reductions = 0;
  std::size_t total_reduction_rounds = 0;

  /// ‖M·y_k − λ_k·y_k‖₂ per pair, against the *distributed* estimates.
  [[nodiscard]] std::vector<double> residuals(const NetworkMatrix& m) const;
};

/// Runs gossip-based orthogonal iteration for the `num_pairs` dominant
/// (largest-eigenvalue) eigenpairs of `m`.
[[nodiscard]] DistributedEigenResult distributed_eigen(const NetworkMatrix& m,
                                                       const DistributedEigenOptions& options);

}  // namespace pcf::linalg
