// Distributed linear solver for network systems — Jacobi iteration with a
// gossip-based global stopping test.
//
// Setting: solve M·x = b where M is a NetworkMatrix (sparsity = topology) and
// node i owns b_i and its solution component x_i. One Jacobi step
//
//   x_i ← (b_i − Σ_{j∈N(i)} M_ij·x_j) / M_ii
//
// needs only the NEIGHBORS' iterates — fully local. The only global quantity
// is the stopping test ‖b − M·x‖² , which is exactly a SUM reduction of the
// local squared residuals: the reduction layer (push-cancel-flow by default)
// supplies it, and with it the fault tolerance — a link failure or lost
// packets inside the norm check only delay termination, never corrupt x.
//
// Converges for strictly diagonally dominant M (e.g., shifted Laplacians
// L + c·I, the standard regularized consensus/Tikhonov systems).
#pragma once

#include "linalg/distributed_eigen.hpp"  // NetworkMatrix

namespace pcf::linalg {

struct DistributedSolveOptions {
  core::Algorithm algorithm = core::Algorithm::kPushCancelFlow;
  std::uint64_t seed = 1;
  /// Stop once every node believes ‖b − Mx‖₂ ≤ tolerance.
  double tolerance = 1e-10;
  std::size_t max_iterations = 5000;
  /// Jacobi steps between two gossip residual checks (the check costs a full
  /// reduction, the steps are free — amortize).
  std::size_t check_interval = 8;
  double reduction_accuracy = 1e-12;
  std::size_t max_rounds_per_reduction = 4000;
  sim::FaultPlan faults;  ///< injected into every residual-norm reduction
};

struct DistributedSolveResult {
  std::vector<double> x;  ///< x_i as held by node i
  std::size_t iterations = 0;
  std::size_t residual_checks = 0;
  std::size_t total_reduction_rounds = 0;
  bool converged = false;
  /// ‖b − Mx‖₂ as estimated by node 0 at the final check.
  double residual_norm = 0.0;
};

/// Solves M x = b by distributed Jacobi iteration. Requires nonzero diagonal;
/// convergence requires spectral radius of the Jacobi matrix < 1 (guaranteed
/// for strict diagonal dominance) — on divergence the result reports
/// converged = false.
[[nodiscard]] DistributedSolveResult distributed_jacobi_solve(
    const NetworkMatrix& m, std::span<const double> b, const DistributedSolveOptions& options);

}  // namespace pcf::linalg
