#include "linalg/distributed_solver.hpp"

#include <cmath>

#include "sim/reduce.hpp"
#include "support/check.hpp"

namespace pcf::linalg {

DistributedSolveResult distributed_jacobi_solve(const NetworkMatrix& m,
                                                std::span<const double> b,
                                                const DistributedSolveOptions& options) {
  const auto& topology = m.topology();
  const std::size_t n = topology.size();
  PCF_CHECK_MSG(b.size() == n, "one right-hand-side entry per node required");
  for (net::NodeId i = 0; i < n; ++i) {
    PCF_CHECK_MSG(m.diagonal(i) != 0.0, "Jacobi needs a nonzero diagonal (node " << i << ")");
  }
  PCF_CHECK_MSG(options.check_interval >= 1, "check interval must be positive");

  DistributedSolveResult result;
  result.x.assign(n, 0.0);

  // Jacobi iterates as an n×1 "matrix" so NetworkMatrix::apply_row serves.
  Matrix x(n, 1);
  Matrix mx(n, 1);
  std::uint64_t reduction_index = 0;

  for (std::size_t iter = 0; iter < options.max_iterations;) {
    for (std::size_t step = 0; step < options.check_interval &&
                               iter < options.max_iterations;
         ++step, ++iter) {
      // x_new_i = (b_i − Σ_{j≠i} M_ij x_j) / M_ii, computed via the full row
      // product minus the diagonal term (neighbors only — local).
      for (net::NodeId i = 0; i < n; ++i) m.apply_row(i, x, mx.row(i));
      for (net::NodeId i = 0; i < n; ++i) {
        const double off_diagonal = mx(i, 0) - m.diagonal(i) * x(i, 0);
        x(i, 0) = (b[i] - off_diagonal) / m.diagonal(i);
      }
    }

    // Global stopping test: ‖b − Mx‖² by gossip SUM reduction of the local
    // squared residuals. Every node gets its own estimate and stops when the
    // norm is below tolerance; the simulator checks node 0's view (nodes
    // agree to reduction accuracy).
    for (net::NodeId i = 0; i < n; ++i) m.apply_row(i, x, mx.row(i));
    std::vector<double> squares(n);
    for (net::NodeId i = 0; i < n; ++i) {
      const double r = b[i] - mx(i, 0);
      squares[i] = r * r;
    }
    // NOTE: every check is a COLD reduction on purpose: residual magnitudes
    // shrink geometrically, and a gossip reduction's relative accuracy is
    // scale-invariant only when its state starts at the data's scale. A
    // warm-started ReductionSession would carry absolute FP noise from the
    // earlier, larger residuals and could never certify the tiny late norms
    // (see sim/session.hpp's "when to use" note).
    sim::ReduceOptions ro;
    ro.algorithm = options.algorithm;
    ro.aggregate = core::Aggregate::kSum;
    std::uint64_t sm = options.seed + 0x9e3779b97f4a7c15ULL * (++reduction_index);
    ro.seed = splitmix64(sm);
    ro.target_accuracy = options.reduction_accuracy;
    ro.max_rounds = options.max_rounds_per_reduction;
    ro.faults = options.faults;
    const auto reduced = sim::reduce(topology, squares, ro);
    ++result.residual_checks;
    result.total_reduction_rounds += reduced.rounds;
    result.residual_norm = std::sqrt(std::max(0.0, reduced.estimate(0)));
    result.iterations = iter;
    if (!std::isfinite(result.residual_norm)) break;  // divergence
    if (result.residual_norm <= options.tolerance) {
      result.converged = true;
      break;
    }
    // Divergence guard: a growing residual on a non-contractive system.
    if (result.residual_norm > 1e12) break;
  }

  for (net::NodeId i = 0; i < n; ++i) result.x[i] = x(i, 0);
  return result;
}

}  // namespace pcf::linalg
