#include "linalg/distributed_eigen.hpp"

#include <cmath>

#include "sim/reduce.hpp"
#include "support/check.hpp"

namespace pcf::linalg {

NetworkMatrix::NetworkMatrix(const net::Topology& topology, const Matrix& dense)
    : topology_(&topology) {
  const std::size_t n = topology.size();
  PCF_CHECK_MSG(dense.rows() == n && dense.cols() == n, "matrix shape must match topology");
  diagonal_.resize(n);
  weights_.resize(n);
  for (net::NodeId i = 0; i < n; ++i) {
    diagonal_[i] = dense(i, i);
    const auto neighbors = topology.neighbors(i);
    weights_[i].resize(neighbors.size());
    for (std::size_t s = 0; s < neighbors.size(); ++s) {
      const net::NodeId j = neighbors[s];
      PCF_CHECK_MSG(std::fabs(dense(i, j) - dense(j, i)) <= 1e-12,
                    "network matrix must be symmetric");
      weights_[i][s] = dense(i, j);
    }
    // Everything off the topology must be zero.
    for (net::NodeId j = 0; j < n; ++j) {
      if (j == i || topology.has_edge(i, j)) continue;
      PCF_CHECK_MSG(dense(i, j) == 0.0, "nonzero entry (" << i << "," << j
                                                          << ") off the topology edges");
    }
  }
}

NetworkMatrix NetworkMatrix::adjacency(const net::Topology& topology) {
  NetworkMatrix m;
  m.topology_ = &topology;
  m.diagonal_.assign(topology.size(), 0.0);
  m.weights_.resize(topology.size());
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    m.weights_[i].assign(topology.degree(i), 1.0);
  }
  return m;
}

NetworkMatrix NetworkMatrix::shifted_adjacency(const net::Topology& topology, double shift) {
  if (shift == 0.0) {
    std::size_t max_degree = 0;
    for (net::NodeId i = 0; i < topology.size(); ++i) {
      max_degree = std::max(max_degree, topology.degree(i));
    }
    shift = static_cast<double>(max_degree) + 1.0;
  }
  NetworkMatrix m = adjacency(topology);
  for (auto& d : m.diagonal_) d = shift;
  return m;
}

NetworkMatrix NetworkMatrix::shifted_laplacian(const net::Topology& topology, double shift) {
  if (shift == 0.0) {
    std::size_t max_degree = 0;
    for (net::NodeId i = 0; i < topology.size(); ++i) {
      max_degree = std::max(max_degree, topology.degree(i));
    }
    shift = 2.0 * static_cast<double>(max_degree);
  }
  // c·I − L = (c − deg)·I + A
  NetworkMatrix m;
  m.topology_ = &topology;
  m.diagonal_.resize(topology.size());
  m.weights_.resize(topology.size());
  for (net::NodeId i = 0; i < topology.size(); ++i) {
    m.diagonal_[i] = shift - static_cast<double>(topology.degree(i));
    m.weights_[i].assign(topology.degree(i), 1.0);
  }
  return m;
}

double NetworkMatrix::edge_weight(net::NodeId i, net::NodeId j) const {
  const auto neighbors = topology_->neighbors(i);
  for (std::size_t s = 0; s < neighbors.size(); ++s) {
    if (neighbors[s] == j) return weights_[i][s];
  }
  PCF_CHECK_MSG(false, "edge_weight: " << i << "-" << j << " is not an edge");
  __builtin_unreachable();
}

void NetworkMatrix::apply_row(net::NodeId i, const Matrix& y, std::span<double> out) const {
  const std::size_t k = y.cols();
  PCF_CHECK_MSG(out.size() == k, "apply_row output size mismatch");
  for (std::size_t c = 0; c < k; ++c) out[c] = diagonal_[i] * y(i, c);
  const auto neighbors = topology_->neighbors(i);
  for (std::size_t s = 0; s < neighbors.size(); ++s) {
    const net::NodeId j = neighbors[s];
    const double w = weights_[i][s];
    for (std::size_t c = 0; c < k; ++c) out[c] += w * y(j, c);
  }
}

Matrix NetworkMatrix::dense() const {
  const std::size_t n = topology_->size();
  Matrix m(n, n);
  for (net::NodeId i = 0; i < n; ++i) {
    m(i, i) = diagonal_[i];
    const auto neighbors = topology_->neighbors(i);
    for (std::size_t s = 0; s < neighbors.size(); ++s) m(i, neighbors[s]) = weights_[i][s];
  }
  return m;
}

DistributedEigenResult distributed_eigen(const NetworkMatrix& m,
                                         const DistributedEigenOptions& options) {
  const auto& topology = m.topology();
  const std::size_t n = topology.size();
  const std::size_t k = options.num_pairs;
  PCF_CHECK_MSG(k >= 1 && k <= core::kMaxDim, "num_pairs out of range");
  PCF_CHECK_MSG(k < n, "need fewer eigenpairs than nodes");

  // Node-local random initial rows.
  Matrix y(n, k);
  for (net::NodeId i = 0; i < n; ++i) {
    Rng row_rng(options.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    for (std::size_t c = 0; c < k; ++c) y(i, c) = row_rng.uniform(-1.0, 1.0);
  }

  DmgsOptions orth;
  orth.algorithm = options.algorithm;
  orth.reduction_accuracy = options.reduction_accuracy;
  orth.max_rounds_per_reduction = options.max_rounds_per_reduction;
  orth.faults = options.faults;

  DistributedEigenResult result;
  Matrix z(n, k);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    // Z = M·Y — node i reads only its neighbors' rows (one exchange round).
    for (net::NodeId i = 0; i < n; ++i) m.apply_row(i, y, z.row(i));
    // Y = orth(Z) via dmGS; every node uses its own R estimates, exactly as
    // in the QR application.
    orth.seed = options.seed + 7919 * (iter + 1);
    const auto qr = dmgs(topology, z, orth);
    y = qr.q;
    result.reductions += qr.reductions;
    result.total_reduction_rounds += qr.total_rounds;
  }
  result.eigenvectors = y;

  // Rayleigh quotients λ_c = y_cᵀ M y_c: node i contributes y(i,c)·(My)(i,c);
  // one batched SUM reduction spreads all k values.
  for (net::NodeId i = 0; i < n; ++i) m.apply_row(i, y, z.row(i));
  std::vector<core::Values> partials(n);
  for (net::NodeId i = 0; i < n; ++i) {
    partials[i] = core::Values(k, 0.0);
    for (std::size_t c = 0; c < k; ++c) partials[i][c] = y(i, c) * z(i, c);
  }
  sim::ReduceOptions ro;
  ro.algorithm = options.algorithm;
  ro.aggregate = core::Aggregate::kSum;
  ro.seed = options.seed ^ 0xe16e2;
  ro.target_accuracy = options.reduction_accuracy;
  ro.max_rounds = options.max_rounds_per_reduction;
  ro.faults = options.faults;
  const auto rayleigh = sim::reduce_vectors(topology, partials, ro);
  ++result.reductions;
  result.total_reduction_rounds += rayleigh.rounds;

  result.eigenvalues.resize(k);
  for (std::size_t c = 0; c < k; ++c) result.eigenvalues[c] = rayleigh.estimate(0, c);
  for (std::size_t c = 0; c < k; ++c) {
    for (net::NodeId i = 1; i < n; ++i) {
      result.eigenvalue_disagreement =
          std::max(result.eigenvalue_disagreement,
                   std::fabs(rayleigh.estimate(i, c) - result.eigenvalues[c]));
    }
  }
  return result;
}

std::vector<double> DistributedEigenResult::residuals(const NetworkMatrix& m) const {
  const std::size_t n = eigenvectors.rows();
  const std::size_t k = eigenvectors.cols();
  Matrix my(n, k);
  for (net::NodeId i = 0; i < n; ++i) m.apply_row(i, eigenvectors, my.row(i));
  std::vector<double> out(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    double norm2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double r = my(i, c) - eigenvalues[c] * eigenvectors(i, c);
      norm2 += r * r;
    }
    out[c] = std::sqrt(norm2);
  }
  return out;
}

}  // namespace pcf::linalg
