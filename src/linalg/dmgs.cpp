#include "linalg/dmgs.hpp"

#include <cmath>

#include "support/check.hpp"

namespace pcf::linalg {

namespace {

/// One distributed SUM reduction of per-node partial vectors; returns each
/// node's estimates. Bumps the option counters via the out-params.
sim::ReduceResult run_reduction(const net::Topology& topology,
                                std::span<const core::Values> partials,
                                const DmgsOptions& options, std::uint64_t reduction_index) {
  sim::ReduceOptions ro;
  ro.algorithm = options.algorithm;
  ro.aggregate = core::Aggregate::kSum;
  ro.reducer = options.reducer;
  // Every reduction gets an independent but reproducible schedule.
  std::uint64_t sm = options.seed + 0x9e3779b97f4a7c15ULL * (reduction_index + 1);
  ro.seed = splitmix64(sm);
  ro.target_accuracy = options.reduction_accuracy;
  ro.max_rounds = options.max_rounds_per_reduction;
  ro.faults = options.faults;
  return sim::reduce_vectors(topology, partials, ro);
}

}  // namespace

DmgsResult dmgs(const net::Topology& topology, const Matrix& v, const DmgsOptions& options) {
  const std::size_t n = v.rows();
  const std::size_t m = v.cols();
  const std::size_t num_nodes = topology.size();
  PCF_CHECK_MSG(n >= num_nodes, "dmgs: need at least one row per node");
  PCF_CHECK_MSG(m >= 1, "dmgs: matrix needs at least one column");

  auto owner = [num_nodes](std::size_t row) { return row % num_nodes; };

  DmgsResult result;
  result.q = v;  // worked in place, column by column
  result.r.assign(num_nodes, Matrix(m, m));
  Matrix& q = result.q;

  std::uint64_t reduction_index = 0;
  auto reduce_partials = [&](std::span<const core::Values> partials) {
    auto res = run_reduction(topology, partials, options, reduction_index++);
    ++result.reductions;
    result.total_rounds += res.rounds;
    if (!res.reached_target) ++result.reductions_hit_cap;
    return res;
  };

  std::vector<core::Values> partials(num_nodes);

  for (std::size_t j = 0; j < m; ++j) {
    // --- r_jj = ‖q_j‖: distributed sum of squared local entries ---
    for (auto& p : partials) p = core::Values{0.0};
    for (std::size_t row = 0; row < n; ++row) {
      partials[owner(row)][0] += q(row, j) * q(row, j);
    }
    const auto norm_res = reduce_partials(partials);
    for (std::size_t node = 0; node < num_nodes; ++node) {
      const double est = norm_res.estimate(node, 0);
      result.r[node](j, j) = est > 0.0 ? std::sqrt(est) : 0.0;
    }
    // Each node normalizes ITS rows with ITS estimate of r_jj.
    for (std::size_t row = 0; row < n; ++row) {
      const double rjj = result.r[owner(row)](j, j);
      PCF_CHECK_MSG(rjj > 0.0, "dmgs: node " << owner(row) << " sees zero norm for column " << j);
      q(row, j) /= rjj;
    }
    if (j + 1 == m) break;

    // --- r_jk for k > j: batched dot products, chunks of kMaxDim ---
    for (std::size_t k0 = j + 1; k0 < m; k0 += core::kMaxDim) {
      const std::size_t chunk = std::min(core::kMaxDim, m - k0);
      for (auto& p : partials) p = core::Values(chunk, 0.0);
      for (std::size_t row = 0; row < n; ++row) {
        auto& p = partials[owner(row)];
        const double qj = q(row, j);
        for (std::size_t c = 0; c < chunk; ++c) p[c] += qj * q(row, k0 + c);
      }
      const auto dot_res = reduce_partials(partials);
      for (std::size_t node = 0; node < num_nodes; ++node) {
        for (std::size_t c = 0; c < chunk; ++c) {
          result.r[node](j, k0 + c) = dot_res.estimate(node, c);
        }
      }
      // Orthogonalize the trailing columns against q_j, again with the row
      // owner's local coefficients.
      for (std::size_t row = 0; row < n; ++row) {
        const Matrix& r_local = result.r[owner(row)];
        const double qj = q(row, j);
        for (std::size_t c = 0; c < chunk; ++c) {
          q(row, k0 + c) -= r_local(j, k0 + c) * qj;
        }
      }
    }
  }
  return result;
}

double DmgsResult::factorization_error(const Matrix& v) const {
  const double scale = v.norm_inf();
  double worst = 0.0;
  for (const Matrix& r_node : r) {
    worst = std::max(worst, (v - q * r_node).norm_inf() / scale);
  }
  return worst;
}

double DmgsResult::self_consistency_error(const Matrix& v, const net::Topology& topology) const {
  const std::size_t n = v.rows();
  const std::size_t m = v.cols();
  const std::size_t num_nodes = topology.size();
  // Reconstruct each row with the row owner's R: V̂(row,:) = Q(row,:) R_owner.
  Matrix reconstructed(n, m);
  for (std::size_t row = 0; row < n; ++row) {
    const Matrix& r_local = r[row % num_nodes];
    for (std::size_t c = 0; c < m; ++c) {
      double acc = 0.0;
      for (std::size_t j = 0; j <= c; ++j) acc += q(row, j) * r_local(j, c);
      reconstructed(row, c) = acc;
    }
  }
  return (v - reconstructed).norm_inf() / v.norm_inf();
}

double DmgsResult::orthogonality_error() const { return linalg::orthogonality_error(q); }

double DmgsResult::r_disagreement() const {
  double worst = 0.0;
  for (std::size_t a = 1; a < r.size(); ++a) {
    for (std::size_t i = 0; i < r[a].rows(); ++i) {
      for (std::size_t jj = 0; jj < r[a].cols(); ++jj) {
        worst = std::max(worst, std::fabs(r[a](i, jj) - r[0](i, jj)));
      }
    }
  }
  return worst;
}

}  // namespace pcf::linalg
