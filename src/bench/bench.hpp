// Standardized benchmark suite — the numbers future optimisation PRs are
// judged against.
//
// A suite is a fixed list of scenarios (algorithm × topology × fault
// profile); every scenario runs `trials` independent seeded trials on the
// synchronous engine and reports convergence, accuracy, wire traffic, and
// the engine's PerfCounters (wall-clock per phase, rounds/sec,
// deliveries/sec). Output is machine-readable JSON (BENCH_pcflow.json) with
// a versioned schema so CI can diff runs.
//
// Determinism: every trial derives ALL of its randomness from
// (suite seed, trial index) — see trial_seed() — and writes only its own
// result slot, so the parallel runner (thread pool over the flattened
// scenario × trial job list) is bitwise identical to the serial one. CI
// exploits this: two runs with --timing=false must produce byte-identical
// files. Timing fields are the only nondeterministic output and are nulled
// out under --timing=false.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"

namespace pcf::bench {

/// One benchmark cell. `fault_profile` is one of "none" (fault-free), "loss"
/// (10% message loss), "crash" (one node crash at max_rounds/4), "linkfail"
/// (one link cut at max_rounds/4), "churn" (continuous link fail/heal
/// cycling: p=0.002 per link per round, mean-20-round outages).
struct Scenario {
  std::string name;        ///< unique id, e.g. "pcf/ring:16/crash"
  std::string algorithm;   ///< ps | pf | pcf | fu | corr | fumd
  std::string topology;    ///< net::Topology::parse spec
  std::string fault_profile = "none";
  std::size_t trials = 2;
  std::size_t max_rounds = 1500;
  double tol = 1e-9;  ///< oracle max relative error target
  /// Engine backend: "legacy" (per-node reducers) or "arena" (SoA fleet).
  std::string engine = "legacy";
  /// Arena round-loop shards (0 = hardware concurrency). Ignored by legacy.
  std::size_t shards = 1;
  /// Delivery model: "sequential" or "crossing" (see sim::Delivery).
  std::string delivery = "sequential";
  /// When > 0, run exactly this many rounds (no per-round oracle error scan —
  /// the scale suites measure raw round throughput) instead of the
  /// run-until-tol loop. `tol`/`max_rounds` are ignored.
  std::size_t fixed_rounds = 0;
};

/// Per-scenario aggregate over its trials.
struct ScenarioResult {
  Scenario scenario;
  std::size_t nodes = 0;
  std::size_t converged_trials = 0;
  RunningStats rounds;           ///< rounds to target (or cap) per trial
  RunningStats final_max_error;  ///< oracle max error at stop per trial
  std::uint64_t messages_sent = 0;
  std::uint64_t doubles_on_wire = 0;
  std::uint64_t deliveries = 0;
  // Timing (summed over trials; excluded from the determinism contract).
  double wall_seconds = 0.0;
  double faults_seconds = 0.0;
  double gossip_seconds = 0.0;
  double delivery_seconds = 0.0;
};

struct BenchOptions {
  std::string suite = "fast";  ///< fast | standard | scale | scale-fast
  std::uint64_t seed = 1;
  std::size_t threads = 1;  ///< trial-runner workers; 0 = hardware concurrency
  /// When false, every "timing" field is emitted as null so that repeated
  /// runs are byte-identical (the CI drift check).
  bool include_timing = true;
};

struct BenchReport {
  BenchOptions options;
  std::vector<ScenarioResult> scenarios;
};

/// The seed for trial `index` of a suite seeded with `suite_seed`. Documented
/// in DESIGN.md (RNG stream layout): a splitmix64 hash of the index keeps
/// trials statistically independent while staying reproducible from the pair.
[[nodiscard]] std::uint64_t trial_seed(std::uint64_t suite_seed, std::size_t index);

/// Suite builders. "fast" is the CI smoke suite (9 scenarios, small graphs);
/// "standard" is the full grid used for performance tracking; "scale" is the
/// arena-engine throughput suite (torus / random-regular up to 10^6 nodes,
/// fixed-round runs — the BENCH baseline the CI perf gate diffs against);
/// "scale-fast" is its CI-sized cut.
[[nodiscard]] std::vector<Scenario> make_suite(const std::string& name);

/// Runs every scenario of `options.suite` (parallel over trials). Results are
/// independent of `options.threads`.
[[nodiscard]] BenchReport run_bench(const BenchOptions& options);

/// Serializes a report to the versioned BENCH_pcflow.json schema.
[[nodiscard]] std::string report_to_json(const BenchReport& report);

}  // namespace pcf::bench
