#include "bench/bench.hpp"

#include <utility>

#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/perf.hpp"

namespace pcf::bench {

namespace {

/// Raw per-trial outcome; aggregated serially after the parallel phase so
/// that thread count cannot influence summation order.
struct TrialResult {
  bool converged = false;
  std::size_t rounds = 0;
  std::size_t nodes = 0;
  double final_max_error = 0.0;
  std::uint64_t messages_sent = 0;
  std::uint64_t doubles_on_wire = 0;
  std::uint64_t deliveries = 0;
  double wall_seconds = 0.0;
  double faults_seconds = 0.0;
  double gossip_seconds = 0.0;
  double delivery_seconds = 0.0;
};

sim::FaultPlan make_faults(const Scenario& s, const net::Topology& topology) {
  sim::FaultPlan plan;
  const double when = static_cast<double>(s.max_rounds) / 4.0;
  if (s.fault_profile == "none") {
    return plan;
  }
  if (s.fault_profile == "loss") {
    plan.message_loss_prob = 0.1;
    return plan;
  }
  if (s.fault_profile == "crash") {
    plan.node_crashes.push_back({when, static_cast<net::NodeId>(topology.size() / 2)});
    return plan;
  }
  if (s.fault_profile == "linkfail") {
    const auto edges = topology.edges();
    PCF_CHECK_MSG(!edges.empty(), "bench: topology has no edges");
    plan.link_failures.push_back({when, edges.front().first, edges.front().second});
    return plan;
  }
  if (s.fault_profile == "churn") {
    // Continuous fail/heal cycling: each live link fails with p = 0.002 per
    // round and revives after a mean-20-round exponential outage.
    plan.churn_fail_prob = 0.002;
    plan.churn_heal_rate = 0.05;
    return plan;
  }
  PCF_CHECK_MSG(false, "bench: unknown fault profile '" << s.fault_profile << "'");
  return plan;
}

TrialResult run_trial(const Scenario& s, std::uint64_t suite_seed, std::size_t trial_index) {
  const std::uint64_t seed = trial_seed(suite_seed, trial_index);

  // Same stream layout as the pcflow CLI: topology from seed^0x7070, input
  // data from seed^0xda7a, engine streams forked from the seed itself.
  Rng topo_rng(seed ^ 0x7070ULL);
  const auto topology = net::Topology::parse(s.topology, topo_rng);

  Rng data_rng(seed ^ 0xda7aULL);
  std::vector<double> values(topology.size());
  for (auto& v : values) v = data_rng.uniform();
  const auto masses = sim::masses_from_values(values, core::Aggregate::kAverage);

  sim::SyncEngineConfig config;
  config.algorithm = core::parse_algorithm(s.algorithm);
  config.seed = seed;
  config.faults = make_faults(s, topology);
  PCF_CHECK_MSG(s.engine == "legacy" || s.engine == "arena",
                "bench: unknown engine '" << s.engine << "' (want legacy|arena)");
  config.mode = s.engine == "arena" ? sim::EngineMode::kArena : sim::EngineMode::kLegacy;
  config.shards = s.shards;
  PCF_CHECK_MSG(s.delivery == "sequential" || s.delivery == "crossing",
                "bench: unknown delivery '" << s.delivery << "' (want sequential|crossing)");
  config.delivery =
      s.delivery == "crossing" ? sim::Delivery::kCrossing : sim::Delivery::kSequential;

  sim::SyncEngine engine(topology, masses, config);
  sim::RunStats stats;
  if (s.fixed_rounds > 0) {
    // Scale mode: raw round throughput, no per-round O(n) oracle scan.
    engine.run(s.fixed_rounds);
    stats = engine.stats();
    stats.reached_target = engine.max_error() <= s.tol;
  } else {
    stats = engine.run_until_error(s.tol, s.max_rounds);
  }

  TrialResult r;
  r.converged = stats.reached_target;
  r.rounds = engine.round();
  r.nodes = topology.size();
  r.final_max_error = engine.max_error();
  r.messages_sent = stats.messages_sent;
  r.doubles_on_wire = stats.doubles_sent;
  const PerfCounters& perf = engine.perf();
  r.deliveries = perf.deliveries;
  r.wall_seconds = perf.total_seconds();
  r.faults_seconds = perf.seconds(PerfCounters::Phase::kFaults);
  r.gossip_seconds = perf.seconds(PerfCounters::Phase::kGossip);
  r.delivery_seconds = perf.seconds(PerfCounters::Phase::kDelivery);
  return r;
}

void emit_stats(JsonWriter& json, std::string_view name, const RunningStats& stats) {
  json.key(name);
  json.begin_object();
  json.field("mean", stats.mean());
  json.field("min", stats.count() ? stats.min() : 0.0);
  json.field("max", stats.count() ? stats.max() : 0.0);
  json.end_object();
}

}  // namespace

std::uint64_t trial_seed(std::uint64_t suite_seed, std::size_t index) {
  std::uint64_t state = suite_seed ^ (0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(index) + 1));
  return splitmix64(state);
}

std::vector<Scenario> make_suite(const std::string& name) {
  std::vector<Scenario> suite;
  const auto add = [&suite](std::string algorithm, std::string topology,
                            std::string fault_profile, std::size_t trials,
                            std::size_t max_rounds) {
    Scenario s;
    s.name = algorithm + "/" + topology + "/" + fault_profile;
    s.algorithm = std::move(algorithm);
    s.topology = std::move(topology);
    s.fault_profile = std::move(fault_profile);
    s.trials = trials;
    s.max_rounds = max_rounds;
    suite.push_back(std::move(s));
  };
  // Scale cells: arena engine, fixed-round throughput runs. The name encodes
  // engine/delivery/shards so cells stay unique within the suite.
  const auto add_scale = [&suite](std::string algorithm, std::string topology,
                                  std::string engine, std::string delivery,
                                  std::size_t shards, std::size_t fixed_rounds) {
    Scenario s;
    s.name = algorithm + "/" + topology + "/" + engine + "-" + delivery + ":" +
             std::to_string(shards);
    s.algorithm = std::move(algorithm);
    s.topology = std::move(topology);
    s.trials = 1;
    s.engine = std::move(engine);
    s.delivery = std::move(delivery);
    s.shards = shards;
    s.fixed_rounds = fixed_rounds;
    suite.push_back(std::move(s));
  };

  if (name == "fast") {
    // CI smoke suite: every algorithm, every topology family, every fault
    // profile is exercised at least once, on graphs small enough for a
    // sub-second Release run.
    for (const char* topo : {"ring:16", "hypercube:4", "torus2d:4x4", "regular:16:4"}) {
      add("pcf", topo, "none", 2, 1500);
    }
    add("pcf", "ring:16", "loss", 2, 1500);
    add("pcf", "ring:16", "crash", 2, 1500);
    add("pcf", "ring:16", "churn", 2, 1500);
    add("ps", "ring:16", "none", 2, 1500);
    add("pf", "ring:16", "none", 2, 1500);
    add("fu", "ring:16", "none", 2, 1500);
    // Roster additions: the tree allreduce converges in O(diameter) fault-free
    // rounds (and self-heals loss); the FU/MD hybrid matches the gossip cells.
    add("corr", "ring:16", "none", 2, 1500);
    add("corr", "ring:16", "loss", 2, 1500);
    add("fumd", "ring:16", "none", 2, 1500);
    add("fumd", "ring:16", "churn", 2, 1500);
    return suite;
  }

  if (name == "standard") {
    // The full grid. Push-sum has zero fault tolerance, so it only runs the
    // fault-free profile (the others would just report its known failure).
    for (const char* topo : {"ring:32", "torus2d:6x6", "hypercube:5", "regular:32:4"}) {
      add("ps", topo, "none", 4, 4000);
      for (const char* algorithm : {"pf", "pcf", "fu", "fumd"}) {
        for (const char* profile : {"none", "loss", "crash", "linkfail", "churn"}) {
          add(algorithm, topo, profile, 4, 4000);
        }
      }
      // The tree algorithm's grid charts the paper's trade-off: exact and
      // diameter-fast when the schedule holds (none/loss), degrading to
      // fragment consensus under exclusions — converged_trials records it.
      for (const char* profile : {"none", "loss", "crash", "linkfail", "churn"}) {
        add("corr", topo, profile, 4, 4000);
      }
    }
    return suite;
  }

  if (name == "scale") {
    // Million-node throughput suite (the committed BENCH_pcflow.json
    // baseline). Sequential delivery keeps no wire, so the big cells measure
    // pure arena gossip; the crossing cells exercise the sharded send/drain
    // paths. PCF/FU carry 2× the per-edge state, so they run at quarter size.
    add_scale("ps", "torus2d:1000x1000", "arena", "sequential", 1, 5);
    add_scale("pf", "torus2d:1000x1000", "arena", "sequential", 1, 5);
    add_scale("pcf", "torus2d:500x500", "arena", "sequential", 1, 5);
    add_scale("fu", "torus2d:500x500", "arena", "sequential", 1, 5);
    add_scale("corr", "torus2d:500x500", "arena", "sequential", 1, 5);
    add_scale("fumd", "torus2d:500x500", "arena", "sequential", 1, 5);
    add_scale("ps", "regular:200000:6", "arena", "sequential", 1, 10);
    add_scale("ps", "torus2d:250x250", "arena", "crossing", 0, 10);
    add_scale("pcf", "torus2d:250x250", "arena", "crossing", 0, 10);
    // Legacy reference at 100k — the arena speedup is this cell vs the next.
    add_scale("ps", "torus2d:316x316", "legacy", "sequential", 1, 5);
    add_scale("ps", "torus2d:316x316", "arena", "sequential", 1, 5);
    return suite;
  }

  if (name == "scale-fast") {
    // CI-sized cut of "scale": same shape (arena sequential + sharded
    // crossing + legacy reference), graphs small enough for sanitizer runs.
    add_scale("ps", "torus2d:60x60", "arena", "sequential", 1, 20);
    add_scale("pf", "torus2d:60x60", "arena", "sequential", 1, 20);
    add_scale("pcf", "torus2d:40x40", "arena", "sequential", 1, 20);
    add_scale("fu", "torus2d:40x40", "arena", "sequential", 1, 20);
    add_scale("corr", "torus2d:40x40", "arena", "sequential", 1, 20);
    add_scale("fumd", "torus2d:40x40", "arena", "sequential", 1, 20);
    add_scale("ps", "torus2d:40x40", "arena", "crossing", 4, 20);
    add_scale("pcf", "torus2d:40x40", "arena", "crossing", 4, 20);
    add_scale("ps", "torus2d:40x40", "legacy", "sequential", 1, 20);
    return suite;
  }

  PCF_CHECK_MSG(false, "bench: unknown suite '" << name
                                                << "' (want fast|standard|scale|scale-fast)");
  return suite;
}

BenchReport run_bench(const BenchOptions& options) {
  const std::vector<Scenario> suite = make_suite(options.suite);

  // Flatten to (scenario, trial) jobs so small suites still fill the pool.
  struct Job {
    std::size_t scenario;
    std::size_t trial;
  };
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < suite.size(); ++s) {
    for (std::size_t t = 0; t < suite[s].trials; ++t) jobs.push_back({s, t});
  }

  std::vector<std::vector<TrialResult>> trials(suite.size());
  for (std::size_t s = 0; s < suite.size(); ++s) trials[s].resize(suite[s].trials);

  // Each job writes only its own slot; aggregation below is serial and in
  // fixed order, so the report is independent of the thread count.
  parallel_for_index(jobs.size(), options.threads, [&](std::size_t j) {
    const Job& job = jobs[j];
    trials[job.scenario][job.trial] = run_trial(suite[job.scenario], options.seed, job.trial);
  });

  BenchReport report;
  report.options = options;
  report.scenarios.reserve(suite.size());
  for (std::size_t s = 0; s < suite.size(); ++s) {
    ScenarioResult agg;
    agg.scenario = suite[s];
    for (const TrialResult& t : trials[s]) {
      agg.nodes = t.nodes;
      if (t.converged) ++agg.converged_trials;
      agg.rounds.add(static_cast<double>(t.rounds));
      agg.final_max_error.add(t.final_max_error);
      agg.messages_sent += t.messages_sent;
      agg.doubles_on_wire += t.doubles_on_wire;
      agg.deliveries += t.deliveries;
      agg.wall_seconds += t.wall_seconds;
      agg.faults_seconds += t.faults_seconds;
      agg.gossip_seconds += t.gossip_seconds;
      agg.delivery_seconds += t.delivery_seconds;
    }
    report.scenarios.push_back(std::move(agg));
  }
  return report;
}

std::string report_to_json(const BenchReport& report) {
  JsonWriter json;
  json.begin_object();
  json.field("schema", "pcflow-bench");
  // v2: + engine / shards / delivery / fixed_rounds per scenario (the scale
  // suites). v3: the algorithm enum grew corr (correction allreduce) and fumd
  // (FU/MD hybrid) cells across every suite. v1/v2 consumers keyed only on
  // fields that are still present.
  json.field("schema_version", std::int64_t{3});
  json.field("suite", report.options.suite);
  json.field("seed", report.options.seed);
  // Note: the thread count is deliberately NOT in the document — results are
  // identical for any value (the determinism contract CI checks by byte
  // comparison), so recording it would be the one field breaking the compare.
  json.field("scenario_count", static_cast<std::uint64_t>(report.scenarios.size()));
  json.key("scenarios");
  json.begin_array();
  for (const ScenarioResult& r : report.scenarios) {
    json.begin_object();
    json.field("name", r.scenario.name);
    json.field("algorithm", r.scenario.algorithm);
    json.field("topology", r.scenario.topology);
    json.field("fault_profile", r.scenario.fault_profile);
    json.field("engine", r.scenario.engine);
    json.field("shards", static_cast<std::uint64_t>(r.scenario.shards));
    json.field("delivery", r.scenario.delivery);
    json.field("fixed_rounds", static_cast<std::uint64_t>(r.scenario.fixed_rounds));
    json.field("nodes", static_cast<std::uint64_t>(r.nodes));
    json.field("trials", static_cast<std::uint64_t>(r.scenario.trials));
    json.field("max_rounds", static_cast<std::uint64_t>(r.scenario.max_rounds));
    json.field("tol", r.scenario.tol);
    json.field("converged_trials", static_cast<std::uint64_t>(r.converged_trials));
    emit_stats(json, "rounds", r.rounds);
    emit_stats(json, "final_max_error", r.final_max_error);
    json.field("messages_sent", r.messages_sent);
    json.field("doubles_on_wire", r.doubles_on_wire);
    json.field("deliveries", r.deliveries);
    json.key("timing");
    if (report.options.include_timing) {
      const double total_rounds = r.rounds.mean() * static_cast<double>(r.rounds.count());
      json.begin_object();
      json.field("wall_seconds", r.wall_seconds);
      json.key("phase_seconds");
      json.begin_object();
      json.field("faults", r.faults_seconds);
      json.field("gossip", r.gossip_seconds);
      json.field("delivery", r.delivery_seconds);
      json.end_object();
      json.field("rounds_per_sec", r.wall_seconds > 0.0 ? total_rounds / r.wall_seconds : 0.0);
      json.field("deliveries_per_sec",
                 r.wall_seconds > 0.0 ? static_cast<double>(r.deliveries) / r.wall_seconds : 0.0);
      json.end_object();
    } else {
      json.null();  // determinism mode: no wall-clock in the document
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace pcf::bench
