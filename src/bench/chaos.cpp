#include "bench/chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "bench/bench.hpp"
#include "core/reducer.hpp"
#include "net/topology.hpp"
#include "sim/engine_sync.hpp"
#include "sim/reduce.hpp"
#include "support/check.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"

namespace pcf::bench {

namespace {

// Base rates at intensity 1; the ramp scales these linearly (probabilities
// are clamped to stay meaningful at high intensities).
constexpr double kBaseChurnFail = 0.004;  // per link per round
constexpr double kChurnHealRate = 0.05;   // mean 20-round outages
constexpr double kBaseDuplicate = 0.02;   // per delivered packet
constexpr double kBaseReorder = 0.02;     // per delivered packet

struct TrialOutcome {
  bool consensus = false;
  bool survived = false;
  double recovery_rounds = 0.0;
  double final_error = 0.0;
  std::size_t nodes = 0;
  sim::FaultExposure exposure;
  std::uint64_t messages_duplicated = 0;
};

sim::FaultPlan make_chaos_faults(const ChaosCell& cell, const net::Topology& topology) {
  sim::FaultPlan plan;
  plan.churn_fail_prob = std::min(0.2, kBaseChurnFail * cell.intensity);
  plan.churn_heal_rate = kChurnHealRate;
  plan.duplicate_prob = std::min(0.5, kBaseDuplicate * cell.intensity);
  plan.reorder_prob = std::min(0.5, kBaseReorder * cell.intensity);
  const double span = static_cast<double>(cell.churn_rounds);
  // One crash mid-chaos and the rejoin before the phase ends, so recovery
  // starts with every node back up.
  const auto victim = static_cast<net::NodeId>(topology.size() / 2);
  plan.node_crashes.push_back({0.25 * span, victim});
  plan.node_rejoins.push_back({0.60 * span, victim});
  // One failure-detector false positive on a link away from the victim,
  // clearing 20 rounds later ("detected up").
  for (const auto& [a, b] : topology.edges()) {
    if (a != victim && b != victim) {
      plan.false_detects.push_back({0.35 * span, a, b, 20.0});
      break;
    }
  }
  return plan;
}

TrialOutcome run_chaos_trial(const ChaosCell& cell, std::uint64_t seed) {
  // Same stream layout as `pcflow bench` and the CLI: topology from
  // seed^0x7070, input data from seed^0xda7a, engine streams from the seed.
  Rng topo_rng(seed ^ 0x7070ULL);
  const auto topology = net::Topology::parse(cell.topology, topo_rng);

  Rng data_rng(seed ^ 0xda7aULL);
  std::vector<double> values(topology.size());
  for (auto& v : values) v = data_rng.uniform();
  const auto masses = sim::masses_from_values(values, core::Aggregate::kAverage);

  sim::SyncEngineConfig config;
  config.algorithm = core::parse_algorithm(cell.algorithm);
  config.seed = seed;
  config.faults = make_chaos_faults(cell, topology);

  sim::SyncEngine engine(topology, masses, config);

  // Phase 1: chaos.
  engine.run(cell.churn_rounds);

  // Phase 2: recovery. Quiet the probabilistic knobs, heal whatever churn
  // left dead (every node is back up by now), and run until consensus
  // returns — the estimates' relative spread collapsing, which is what
  // "recovered" means when accumulated fault bias shifted the conserved mass.
  sim::FaultPlan& live = engine.mutable_faults();
  live.churn_fail_prob = 0.0;
  live.duplicate_prob = 0.0;
  live.reorder_prob = 0.0;
  for (const auto& [a, b] : engine.dead_links()) engine.heal_link_now(a, b);

  TrialOutcome outcome;
  outcome.recovery_rounds = static_cast<double>(cell.recovery_max_rounds);
  const double scale = std::max(1.0, std::fabs(engine.oracle().target()));
  for (std::size_t r = 0; r < cell.recovery_max_rounds; ++r) {
    engine.step();
    const std::vector<double> estimates = engine.estimates();
    const auto [lo, hi] = std::minmax_element(estimates.begin(), estimates.end());
    if (*hi - *lo <= 1e-9 * scale) {
      outcome.consensus = true;
      outcome.recovery_rounds = static_cast<double>(r + 1);
      break;
    }
  }
  outcome.final_error = engine.max_error();
  outcome.survived = outcome.consensus && outcome.final_error <= cell.tol;
  outcome.nodes = topology.size();
  outcome.exposure = engine.fault_exposure();
  outcome.messages_duplicated = engine.stats().messages_duplicated;
  return outcome;
}

struct RestoreTrialOutcome {
  bool fingerprint_match = false;
  bool restore_converged = false;
  bool intrinsic_converged = false;
  double restore_rounds = 0.0;
  double intrinsic_rounds = 0.0;
  double restore_error = 0.0;
  double intrinsic_error = 0.0;
  std::size_t nodes = 0;
  std::uint64_t bytes_full = 0;
  std::uint64_t bytes_light = 0;
};

sim::FaultPlan make_restore_faults(const ChaosRestoreCell& cell, const net::Topology& topology) {
  // Scheduled events only, all done before the kill: the probabilistic knobs
  // stay zero, so the pre-kill trajectory is fixed by the schedule and the
  // checkpoint cursors land mid-schedule (the interesting case for restore).
  sim::FaultPlan plan;
  const double span = static_cast<double>(cell.kill_round);
  const auto victim = static_cast<net::NodeId>(topology.size() / 2);
  plan.node_crashes.push_back({0.20 * span, victim});
  plan.node_rejoins.push_back({0.40 * span, victim});
  std::size_t picked = 0;
  for (const auto& [a, b] : topology.edges()) {
    if (a == victim || b == victim) continue;
    if (picked == 0) {
      plan.link_failures.push_back({0.15 * span, a, b});
      plan.link_heals.push_back({0.35 * span, a, b});
    } else if (picked == 1) {
      plan.false_detects.push_back({0.25 * span, a, b, 5.0});
    }
    if (++picked == 2) break;
  }
  return plan;
}

RestoreTrialOutcome run_restore_trial(const ChaosRestoreCell& cell, std::uint64_t seed) {
  Rng topo_rng(seed ^ 0x7070ULL);
  const auto topology = net::Topology::parse(cell.topology, topo_rng);
  Rng data_rng(seed ^ 0xda7aULL);
  std::vector<double> values(topology.size());
  for (auto& v : values) v = data_rng.uniform();
  const auto masses = sim::masses_from_values(values, core::Aggregate::kAverage);

  sim::SyncEngineConfig config;
  config.algorithm = core::parse_algorithm(cell.algorithm);
  config.seed = seed;
  config.mode = cell.engine == "arena" ? sim::EngineMode::kArena : sim::EngineMode::kLegacy;
  config.faults = make_restore_faults(cell, topology);

  RestoreTrialOutcome out;
  out.nodes = topology.size();

  // The doomed primary: checkpoints every `checkpoint_every` rounds, dies at
  // `kill_round` (everything not in the last blob is lost with the process).
  sim::SyncEngine primary(topology, masses, config);
  std::string last_checkpoint = primary.save_checkpoint(sim::CheckpointMode::kFull);
  std::size_t checkpoint_round = 0;
  out.bytes_full = last_checkpoint.size();
  out.bytes_light = primary.save_checkpoint(sim::CheckpointMode::kLightweight).size();
  for (std::size_t r = 0; r < cell.kill_round; ++r) {
    primary.step();
    if (primary.round() % cell.checkpoint_every == 0) {
      last_checkpoint = primary.save_checkpoint(sim::CheckpointMode::kFull);
      checkpoint_round = primary.round();
      out.bytes_full = last_checkpoint.size();
      out.bytes_light = primary.save_checkpoint(sim::CheckpointMode::kLightweight).size();
    }
  }
  const std::uint64_t kill_fingerprint = primary.state_fingerprint();

  // Contender 1 (restore): fresh engine + last checkpoint, replay to the kill
  // point — the replay must reproduce the pre-kill state bitwise, which is
  // the whole-layer correctness probe — then race to the accuracy target.
  sim::SyncEngine restored(topology, masses, config);
  restored.restore(last_checkpoint);
  restored.run(cell.kill_round - checkpoint_round);
  out.fingerprint_match = restored.state_fingerprint() == kill_fingerprint;
  out.restore_converged = restored.run_until_error(cell.tol, cell.max_rounds).reached_target;
  out.restore_rounds = static_cast<double>(restored.round() - checkpoint_round);
  out.restore_error = restored.max_error();

  // Contender 2 (intrinsic): the paper's zero-checkpoint story. No blob
  // survived the kill, so restart cold from the construction inputs (the
  // fault schedule died with the process) and let the algorithm reconverge
  // from scratch.
  sim::SyncEngineConfig cold = config;
  cold.faults = sim::FaultPlan{};
  sim::SyncEngine intrinsic(topology, masses, cold);
  out.intrinsic_converged = intrinsic.run_until_error(cell.tol, cell.max_rounds).reached_target;
  out.intrinsic_rounds = static_cast<double>(intrinsic.round());
  out.intrinsic_error = intrinsic.max_error();
  return out;
}

QuantileSummary summarize(std::vector<double> samples) {
  QuantileSummary q;
  if (samples.empty()) return q;
  std::sort(samples.begin(), samples.end());
  q.p50 = quantile(samples, 0.5);
  q.p90 = quantile(samples, 0.9);
  q.max = samples.back();
  return q;
}

std::string format_intensity(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "x%g", v);
  return buf;
}

void emit_quantiles(JsonWriter& json, std::string_view name, const QuantileSummary& q) {
  json.key(name);
  json.begin_object();
  json.field("p50", q.p50);
  json.field("p90", q.p90);
  json.field("max", q.max);
  json.end_object();
}

}  // namespace

std::vector<ChaosCell> make_chaos_cells(bool fast) {
  std::vector<ChaosCell> cells;
  const auto add = [&cells](const char* algorithm, const char* topology, double intensity,
                            std::size_t trials, std::size_t churn_rounds,
                            std::size_t recovery_max_rounds) {
    ChaosCell c;
    c.algorithm = algorithm;
    c.topology = topology;
    c.intensity = intensity;
    c.trials = trials;
    c.churn_rounds = churn_rounds;
    c.recovery_max_rounds = recovery_max_rounds;
    c.name = c.algorithm + "/" + c.topology + "/" + format_intensity(intensity);
    cells.push_back(std::move(c));
  };

  if (fast) {
    // CI smoke: the paper's algorithm plus one baseline, two topology
    // families, a short ramp — small enough for a sub-minute Release run.
    for (const char* topo : {"ring:16", "hypercube:4"}) {
      for (const double intensity : {1.0, 2.0}) {
        add("pcf", topo, intensity, 2, 150, 1500);
        add("pf", topo, intensity, 2, 150, 1500);
        // Roster: the tree allreduce's churn cells chart the paper's
        // trade-off (exclusions fragment the schedule; recovery needs the
        // healed tree to re-propagate), the hybrid rides the gossip cells.
        add("corr", topo, intensity, 2, 150, 1500);
        add("fumd", topo, intensity, 2, 150, 1500);
      }
    }
    return cells;
  }

  // The full ramp: every algorithm (push-sum's casualties are the point —
  // it has no fault story), three topology families, intensities 0.5–4.
  for (const char* algorithm : {"ps", "pf", "pcf", "fu", "corr", "fumd"}) {
    for (const char* topo : {"ring:32", "torus2d:6x6", "hypercube:5"}) {
      for (const double intensity : {0.5, 1.0, 2.0, 4.0}) {
        add(algorithm, topo, intensity, 4, 400, 6000);
      }
    }
  }
  return cells;
}

std::vector<ChaosRestoreCell> make_chaos_restore_cells(bool fast) {
  std::vector<ChaosRestoreCell> cells;
  const auto add = [&cells](const char* algorithm, const char* topology, const char* engine,
                            std::size_t trials, std::size_t kill_round,
                            std::size_t checkpoint_every, std::size_t max_rounds) {
    ChaosRestoreCell c;
    c.algorithm = algorithm;
    c.topology = topology;
    c.engine = engine;
    c.trials = trials;
    c.kill_round = kill_round;
    c.checkpoint_every = checkpoint_every;
    c.max_rounds = max_rounds;
    c.name = std::string("restore/") + algorithm + "/" + topology + "/" + engine;
    cells.push_back(std::move(c));
  };

  // kill_round is deliberately NOT a multiple of checkpoint_every: the
  // restore contender always pays a real replay segment.
  if (fast) {
    add("pcf", "ring:16", "legacy", 2, 70, 20, 3000);
    add("pcf", "ring:16", "arena", 2, 70, 20, 3000);
    add("pf", "hypercube:4", "legacy", 2, 70, 20, 3000);
    add("corr", "ring:16", "arena", 2, 70, 20, 3000);
    add("fumd", "hypercube:4", "legacy", 2, 70, 20, 3000);
    return cells;
  }
  for (const char* algorithm : {"ps", "pf", "pcf", "fu", "corr", "fumd"}) {
    for (const char* topo : {"ring:32", "hypercube:5"}) {
      for (const char* engine : {"legacy", "arena"}) {
        add(algorithm, topo, engine, 3, 130, 40, 6000);
      }
    }
  }
  return cells;
}

ChaosReport run_chaos(const ChaosOptions& options) {
  ChaosReport report;
  report.options = options;
  const std::vector<ChaosCell> cells = make_chaos_cells(options.fast);
  report.cells.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const ChaosCell& cell = cells[c];
    ChaosCellResult result;
    result.cell = cell;
    std::vector<double> recovery;
    std::vector<double> error;
    for (std::size_t t = 0; t < cell.trials; ++t) {
      // Mix the cell index into the suite seed so cells are independent.
      const std::uint64_t seed = trial_seed(options.seed + 0x10001ULL * (c + 1), t);
      const TrialOutcome outcome = run_chaos_trial(cell, seed);
      result.nodes = outcome.nodes;
      if (outcome.consensus) ++result.consensus;
      if (outcome.survived) ++result.survived;
      recovery.push_back(outcome.recovery_rounds);
      error.push_back(outcome.final_error);
      result.link_failures += outcome.exposure.link_failures;
      result.link_heals += outcome.exposure.link_heals;
      result.rejoins += outcome.exposure.rejoins;
      result.false_detects += outcome.exposure.false_detects;
      result.messages_duplicated += outcome.messages_duplicated;
    }
    result.recovery_rounds = summarize(std::move(recovery));
    result.final_error = summarize(std::move(error));
    report.cells.push_back(std::move(result));
  }

  const std::vector<ChaosRestoreCell> restore_cells = make_chaos_restore_cells(options.fast);
  report.restore_cells.reserve(restore_cells.size());
  for (std::size_t c = 0; c < restore_cells.size(); ++c) {
    const ChaosRestoreCell& cell = restore_cells[c];
    ChaosRestoreResult result;
    result.cell = cell;
    std::vector<double> restore_rounds, restore_error, intrinsic_rounds, intrinsic_error;
    for (std::size_t t = 0; t < cell.trials; ++t) {
      // A different cell-mixing constant than the churn sweep, so the two
      // families stay independent per suite seed.
      const std::uint64_t seed = trial_seed(options.seed + 0x20002ULL * (c + 1), t);
      const RestoreTrialOutcome outcome = run_restore_trial(cell, seed);
      result.nodes = outcome.nodes;
      if (outcome.fingerprint_match) ++result.fingerprint_matches;
      if (outcome.restore_converged) ++result.restore_converged;
      if (outcome.intrinsic_converged) ++result.intrinsic_converged;
      result.checkpoint_bytes_full = std::max(result.checkpoint_bytes_full, outcome.bytes_full);
      result.checkpoint_bytes_light = std::max(result.checkpoint_bytes_light, outcome.bytes_light);
      restore_rounds.push_back(outcome.restore_rounds);
      restore_error.push_back(outcome.restore_error);
      intrinsic_rounds.push_back(outcome.intrinsic_rounds);
      intrinsic_error.push_back(outcome.intrinsic_error);
    }
    result.restore_rounds = summarize(std::move(restore_rounds));
    result.restore_error = summarize(std::move(restore_error));
    result.intrinsic_rounds = summarize(std::move(intrinsic_rounds));
    result.intrinsic_error = summarize(std::move(intrinsic_error));
    report.restore_cells.push_back(std::move(result));
  }
  return report;
}

std::string chaos_report_to_json(const ChaosReport& report) {
  JsonWriter json;
  json.begin_object();
  json.field("schema", "pcflow-chaos");
  // v2 adds the checkpoint-vs-intrinsic race family (restore_cells). v3 grows
  // the algorithm enum: corr (correction allreduce) and fumd (FU/MD hybrid)
  // cells in both families.
  json.field("schema_version", std::int64_t{3});
  json.field("mode", report.options.fast ? "fast" : "full");
  json.field("seed", report.options.seed);
  // No wall-clock fields anywhere: a chaos report is byte-deterministic per
  // seed by construction (CI compares two runs directly).
  json.field("cell_count", static_cast<std::uint64_t>(report.cells.size()));
  json.key("cells");
  json.begin_array();
  for (const ChaosCellResult& r : report.cells) {
    json.begin_object();
    json.field("name", r.cell.name);
    json.field("algorithm", r.cell.algorithm);
    json.field("topology", r.cell.topology);
    json.field("intensity", r.cell.intensity);
    json.field("churn_fail_prob", std::min(0.2, kBaseChurnFail * r.cell.intensity));
    json.field("churn_heal_rate", kChurnHealRate);
    json.field("duplicate_prob", std::min(0.5, kBaseDuplicate * r.cell.intensity));
    json.field("reorder_prob", std::min(0.5, kBaseReorder * r.cell.intensity));
    json.field("nodes", static_cast<std::uint64_t>(r.nodes));
    json.field("trials", static_cast<std::uint64_t>(r.cell.trials));
    json.field("churn_rounds", static_cast<std::uint64_t>(r.cell.churn_rounds));
    json.field("recovery_max_rounds", static_cast<std::uint64_t>(r.cell.recovery_max_rounds));
    json.field("tol", r.cell.tol);
    json.field("consensus", static_cast<std::uint64_t>(r.consensus));
    json.field("survived", static_cast<std::uint64_t>(r.survived));
    emit_quantiles(json, "recovery_rounds", r.recovery_rounds);
    emit_quantiles(json, "final_error", r.final_error);
    json.field("link_failures", r.link_failures);
    json.field("link_heals", r.link_heals);
    json.field("rejoins", r.rejoins);
    json.field("false_detects", r.false_detects);
    json.field("messages_duplicated", r.messages_duplicated);
    json.end_object();
  }
  json.end_array();
  json.field("restore_cell_count", static_cast<std::uint64_t>(report.restore_cells.size()));
  json.key("restore_cells");
  json.begin_array();
  for (const ChaosRestoreResult& r : report.restore_cells) {
    json.begin_object();
    json.field("name", r.cell.name);
    json.field("algorithm", r.cell.algorithm);
    json.field("topology", r.cell.topology);
    json.field("engine", r.cell.engine);
    json.field("nodes", static_cast<std::uint64_t>(r.nodes));
    json.field("trials", static_cast<std::uint64_t>(r.cell.trials));
    json.field("kill_round", static_cast<std::uint64_t>(r.cell.kill_round));
    json.field("checkpoint_every", static_cast<std::uint64_t>(r.cell.checkpoint_every));
    json.field("max_rounds", static_cast<std::uint64_t>(r.cell.max_rounds));
    json.field("tol", r.cell.tol);
    json.field("fingerprint_matches", static_cast<std::uint64_t>(r.fingerprint_matches));
    json.field("restore_converged", static_cast<std::uint64_t>(r.restore_converged));
    json.field("intrinsic_converged", static_cast<std::uint64_t>(r.intrinsic_converged));
    json.field("checkpoint_bytes_full", r.checkpoint_bytes_full);
    json.field("checkpoint_bytes_light", r.checkpoint_bytes_light);
    emit_quantiles(json, "restore_rounds", r.restore_rounds);
    emit_quantiles(json, "restore_error", r.restore_error);
    emit_quantiles(json, "intrinsic_rounds", r.intrinsic_rounds);
    emit_quantiles(json, "intrinsic_error", r.intrinsic_error);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str() + "\n";
}

}  // namespace pcf::bench
