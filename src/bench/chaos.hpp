// Chaos sweep harness — ramping churn intensity across algorithm × topology
// cells, measuring how each algorithm rides out (and recovers from) a hostile
// network.
//
// Every trial has two phases on the synchronous engine:
//   1. chaos phase   — `churn_rounds` rounds under the scaled fault cocktail:
//                      link churn (fail/heal cycling), adversarial delivery
//                      (duplication + bounded reordering), one node crash with
//                      a later rejoin, and a failure-detector false positive;
//   2. recovery phase — the probabilistic knobs are zeroed, every link still
//                      dead from churn is healed, and the engine runs until
//                      the estimates re-agree (relative spread ≤ 1e-9 —
//                      consensus restored) or `recovery_max_rounds` elapses.
//                      The rounds needed are the recovery time.
// A trial *survives* when consensus returns AND the residual error against
// the retargeted oracle stays under `tol` — interrupted PCF cancellation
// handshakes each cost up to one in-flight flow of mass (the two-generals
// window), so the residual, not exact reconvergence, is the honest accuracy
// measure. Cells aggregate recovery-time and final-error quantiles.
//
// Determinism: like `pcflow bench`, every trial derives all randomness from
// (sweep seed, cell index, trial index); the JSON schema ("pcflow-chaos",
// versioned) carries no wall-clock fields, so two runs with the same seed are
// byte-identical — CI checks this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcf::bench {

/// One chaos cell: an algorithm on a topology at a churn intensity.
struct ChaosCell {
  std::string name;       ///< unique id, e.g. "pcf/ring:16/x2"
  std::string algorithm;  ///< ps | pf | pcf | fu | corr | fumd
  std::string topology;   ///< net::Topology::parse spec
  double intensity = 1.0;  ///< scales the churn / duplication / reorder rates
  std::size_t trials = 2;
  std::size_t churn_rounds = 150;          ///< chaos-phase length
  std::size_t recovery_max_rounds = 1500;  ///< recovery-phase cap
  /// Residual oracle error a consensus-restoring trial may carry and still
  /// count as survived (accumulated fault bias, not divergence).
  double tol = 1e-2;
};

/// Simple quantile summary (exact, over the cell's trials).
struct QuantileSummary {
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

struct ChaosCellResult {
  ChaosCell cell;
  std::size_t nodes = 0;
  std::size_t consensus = 0;  ///< trials whose estimates re-agreed in time
  std::size_t survived = 0;   ///< consensus trials whose residual error ≤ tol
  QuantileSummary recovery_rounds;  ///< rounds to consensus (cap if never)
  QuantileSummary final_error;      ///< oracle max error at stop
  // Summed fault telemetry over the cell's trials.
  std::uint64_t link_failures = 0;
  std::uint64_t link_heals = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t false_detects = 0;
  std::uint64_t messages_duplicated = 0;
};

/// One checkpoint-vs-intrinsic race cell (the second scenario family): the
/// simulation process dies at `kill_round`; two recovery strategies race back
/// to the accuracy target `tol`:
///   * restore   — resume from the last periodic checkpoint (taken every
///                 `checkpoint_every` rounds) and replay to the kill point —
///                 the replay must land on a bitwise-identical state
///                 fingerprint, which the harness verifies — then converge;
///   * intrinsic — PCF's zero-checkpoint story: restart cold from the
///                 construction inputs and let the algorithm reconverge from
///                 scratch.
/// Rounds-after-kill and residual error of both contenders are reported, so
/// the JSON answers "what does a checkpoint actually buy over the algorithm's
/// own fault tolerance, and at what blob size".
struct ChaosRestoreCell {
  std::string name;       ///< unique id, e.g. "restore/pcf/ring:16/legacy"
  std::string algorithm;  ///< ps | pf | pcf | fu | corr | fumd
  std::string topology;   ///< net::Topology::parse spec
  std::string engine = "legacy";  ///< legacy | arena
  std::size_t trials = 2;
  std::size_t kill_round = 60;        ///< the process dies after this round
  std::size_t checkpoint_every = 20;  ///< periodic checkpoint cadence
  std::size_t max_rounds = 3000;      ///< per-contender convergence cap
  double tol = 1e-9;                  ///< accuracy target both contenders race to
};

struct ChaosRestoreResult {
  ChaosRestoreCell cell;
  std::size_t nodes = 0;
  /// Trials whose restored replay reproduced the pre-kill state fingerprint
  /// bitwise — must equal `cell.trials` for a healthy checkpoint layer.
  std::size_t fingerprint_matches = 0;
  std::size_t restore_converged = 0;    ///< restore contender reached tol
  std::size_t intrinsic_converged = 0;  ///< intrinsic contender reached tol
  std::uint64_t checkpoint_bytes_full = 0;   ///< wire-inclusive blob size
  std::uint64_t checkpoint_bytes_light = 0;  ///< state-only blob size
  QuantileSummary restore_rounds;    ///< rounds after the kill (replay + converge)
  QuantileSummary restore_error;     ///< residual oracle error at stop
  QuantileSummary intrinsic_rounds;  ///< rounds after the kill (cold reconvergence)
  QuantileSummary intrinsic_error;
};

struct ChaosOptions {
  bool fast = false;  ///< CI-sized sweep (fewer cells, shorter phases)
  std::uint64_t seed = 1;
};

struct ChaosReport {
  ChaosOptions options;
  std::vector<ChaosCellResult> cells;
  std::vector<ChaosRestoreResult> restore_cells;
};

/// The sweep grid for `fast` (CI smoke) or the full ramp.
[[nodiscard]] std::vector<ChaosCell> make_chaos_cells(bool fast);

/// The checkpoint-vs-intrinsic race grid (see ChaosRestoreCell).
[[nodiscard]] std::vector<ChaosRestoreCell> make_chaos_restore_cells(bool fast);

/// Runs the sweep serially in deterministic cell × trial order.
[[nodiscard]] ChaosReport run_chaos(const ChaosOptions& options);

/// Serializes to the versioned CHAOS_pcflow.json schema ("pcflow-chaos", 2).
[[nodiscard]] std::string chaos_report_to_json(const ChaosReport& report);

}  // namespace pcf::bench
